(* Tests for the TCP serving tier: the bounded line framer, the
   consistent-hash shard ring, interleaved multi-client determinism
   against the in-process server, and end-to-end socket behaviour of
   'dcsa_synth serve --tcp' (byte-identity with stdio, distinct rids,
   surviving client disconnects). *)

module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Cache_key = Mfb_server.Cache_key
module Frame = Mfb_net.Frame
module Shard = Mfb_net.Shard
module Tcp_client = Mfb_net.Tcp_client

let qtest = Test_util.qtest

(* --- frame: incremental bounded line assembly --- *)

let drain fr =
  let rec go acc =
    match Frame.next fr with
    | Some ev -> go (ev :: acc)
    | None -> List.rev acc
  in
  go []

let test_frame_split_feeds () =
  let fr = Frame.create () in
  Frame.feed fr "hel";
  Alcotest.(check int) "no line yet" 0 (List.length (drain fr));
  Frame.feed fr "lo\nwor";
  (match drain fr with
   | [ Frame.Line "hello" ] -> ()
   | _ -> Alcotest.fail "expected [Line hello]");
  Frame.feed fr "ld\nx\n";
  (match drain fr with
   | [ Frame.Line "world"; Frame.Line "x" ] -> ()
   | _ -> Alcotest.fail "expected [world; x]")

let test_frame_oversized_resync () =
  let fr = Frame.create ~max_bytes:8 () in
  (* one oversized line, then a normal one: the framer must swallow
     the rest of the long line and resync at the newline *)
  Frame.feed fr (String.make 20 'a' ^ "\nok\n");
  (match drain fr with
   | [ Frame.Oversized 20; Frame.Line "ok" ] -> ()
   | [ Frame.Oversized n; Frame.Line "ok" ] ->
     Alcotest.failf "oversized carried %d, want 20" n
   | _ -> Alcotest.fail "expected [Oversized; Line ok]")

let test_frame_close_surfaces_partial () =
  let fr = Frame.create () in
  Frame.feed fr "partial";
  Frame.close fr;
  (match drain fr with
   | [ Frame.Line "partial" ] -> ()
   | _ -> Alcotest.fail "close must surface the final unterminated line")

(* --- shard: consistent hashing over fleet slots --- *)

let key_of_seed seed =
  (* distinct cache keys from distinct submissions *)
  let g =
    match
      Mfb_bioassay.Assay_file.parse
        (Printf.sprintf "assay \"k%d\"\nfluid a 4e-7\nop 0 mix %d a\n" seed
           (1 + (seed mod 7)))
    with
    | Ok g -> g
    | Error _ -> Alcotest.fail "assay parse"
  in
  Cache_key.make ~config:Mfb_core.Config.default ~graph:g
    ~allocation:(Mfb_component.Allocation.of_vector (1, 0, 0, 0))
    ()

let test_shard_stable_and_in_range () =
  let ring = Shard.create ~slots:5 () in
  let ring' = Shard.create ~slots:5 () in
  for seed = 0 to 99 do
    let k = key_of_seed seed in
    let s = Shard.slot_of_key ring k in
    Alcotest.(check bool) "slot in range" true (s >= 0 && s < 5);
    Alcotest.(check int) "same ring params, same owner" s
      (Shard.slot_of_key ring' k)
  done

let test_shard_covers_all_slots () =
  (* 64 replicas per slot spread arcs well enough that 200 keys land
     on every member of a 4-slot ring *)
  let ring = Shard.create ~slots:4 () in
  let seen = Array.make 4 false in
  for seed = 0 to 199 do
    seen.(Shard.slot_of_key ring (key_of_seed seed)) <- true
  done;
  Alcotest.(check bool) "all slots own keys" true
    (Array.for_all Fun.id seen)

let prop_shard_remove_remaps_only_owned =
  qtest ~count:100 "removing a slot remaps only its keys"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 5))
    (fun (slots, victim) ->
      let victim = victim mod slots in
      let ring = Shard.create ~slots () in
      let ring' = Shard.remove ring victim in
      List.for_all
        (fun seed ->
          let k = key_of_seed seed in
          let before = Shard.slot_of_hash ring (Cache_key.to_int64 k) in
          let after = Shard.slot_of_hash ring' (Cache_key.to_int64 k) in
          if before = victim then after <> victim
          else after = before)
        (List.init 60 Fun.id))

let test_shard_validation () =
  Alcotest.check_raises "slots < 1"
    (Invalid_argument "Shard.create: slots < 1") (fun () ->
      ignore (Shard.create ~slots:0 ()));
  let ring = Shard.of_slots [ 3; 1 ] in
  Alcotest.(check (list int)) "of_slots ascending" [ 1; 3 ] (Shard.slots ring);
  Alcotest.check_raises "remove last"
    (Invalid_argument "Shard.remove: cannot remove the last slot")
    (fun () -> ignore (Shard.remove (Shard.of_slots [ 2 ]) 2))

(* --- interleaved multi-client streams vs one serialized stream ---

   The listener reduces TCP concurrency to an interleaving of request
   lines through the shared server, so the whole concurrency contract
   is: any interleaving of K clients' streams answers each line exactly
   as the same global sequence fed by a single client — modulo the id
   tokens.  This drives the queue's admission/displacement ordering
   through every interleaving qcheck can produce. *)

let submit_line ~id ~priority ~seed =
  P.request_to_line
    (P.Submit
       {
         id;
         priority;
         deadline = None;
         flow = `Ours;
         spec = P.Benchmark "PCR";
         overrides = { P.no_overrides with P.o_seed = Some seed };
         trace = None;
       })

let small_server () =
  Server.create
    {
      Server.default_config with
      queue_depth = 3;  (* tight, so displacement actually happens *)
      batch = 64;       (* nothing dispatches until demanded *)
      cache_capacity = 16;
    }

(* Replace every occurrence of [sub] in [s] with [by]. *)
let replace_all ~sub ~by s =
  let m = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - m do
    if String.sub s !i m = sub then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

(* Replace every id token ("mc0q1" style or "sg3" style) by its global
   arrival position, so responses from differently-named runs become
   comparable.  Ids are substituted as JSON string tokens, which cannot
   collide with other payload content. *)
let canonicalize ids line =
  List.fold_left
    (fun acc (id, pos) ->
      replace_all
        ~sub:(Printf.sprintf "\"%s\"" id)
        ~by:(Printf.sprintf "\"<%d>\"" pos)
        acc)
    line ids

let interleave_gen =
  QCheck2.Gen.(
    int_range 2 4 >>= fun k ->
    list_size (int_range 1 4) (pair (int_bound 3) (int_bound 9))
    |> list_repeat k
    >>= fun streams ->
    (* the schedule is a shuffled multiset of client indices *)
    let multiset =
      List.concat
        (List.mapi (fun c reqs -> List.map (fun _ -> c) reqs) streams)
    in
    shuffle_l multiset >>= fun schedule -> return (streams, schedule))

let prop_interleaving_matches_serialized =
  qtest ~count:40 "K interleaved clients = serialized, modulo ids"
    interleave_gen (fun (streams, schedule) ->
      let streams = Array.of_list (List.map Array.of_list streams) in
      let cursors = Array.make (Array.length streams) 0 in
      (* materialize the global arrival sequence from the schedule *)
      let arrivals =
        List.map
          (fun c ->
            let i = cursors.(c) in
            cursors.(c) <- i + 1;
            let priority, seed = streams.(c).(i) in
            (c, i, priority, seed))
          schedule
      in
      let run name_of =
        let server = small_server () in
        let ids =
          List.mapi (fun pos (c, i, _, _) -> (name_of pos c i, pos)) arrivals
        in
        let responses =
          List.map2
            (fun (id, _) (_, _, priority, seed) ->
              match Server.handle_line server (submit_line ~id ~priority ~seed)
              with
              | Some resp -> canonicalize ids resp
              | None -> "<none>")
            ids arrivals
        in
        let statuses =
          List.map
            (fun (id, _) ->
              match
                Server.handle_line server
                  (P.request_to_line (P.Status id))
              with
              | Some resp -> canonicalize ids resp
              | None -> "<none>")
            ids
        in
        let stats =
          match Server.handle_line server (P.request_to_line P.Stats) with
          | Some resp -> resp
          | None -> "<none>"
        in
        (responses, statuses, stats)
      in
      let multi = run (fun _pos c i -> Printf.sprintf "mc%dq%d" c i) in
      let serial = run (fun pos _c _i -> Printf.sprintf "sg%d" pos) in
      multi = serial)

(* --- end-to-end: serve --tcp over real sockets --- *)

let exe = "../bin/dcsa_synth.exe"

let temp_path suffix =
  let f = Filename.temp_file "mfb_net_test" suffix in
  Sys.remove f;
  f

let spawn_serve extra_args =
  let port_path = temp_path ".port" in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    Array.of_list
      ([ exe; "serve"; "--tcp"; "0"; "--port-file"; port_path ] @ extra_args)
  in
  let pid = Unix.create_process exe argv null_in Unix.stdout null_out in
  Unix.close null_in;
  Unix.close null_out;
  match Tcp_client.wait_port_file ~timeout:30.0 port_path with
  | Ok port -> (pid, port, port_path)
  | Error e ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    Alcotest.failf "serve --tcp did not come up: %s" e

type tconn = { fd : Unix.file_descr; fr : Frame.t }

let connect port = { fd = Tcp_client.connect_fd ~port (); fr = Frame.create () }

let send t line =
  let s = line ^ "\n" in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring t.fd s !off (n - !off)
  done

let recv t =
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Frame.next t.fr with
    | Some (Frame.Line l) -> l
    | Some (Frame.Oversized n) -> Alcotest.failf "oversized reply (%d)" n
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "reply timeout";
      (match Unix.select [ t.fd ] [] [] 1.0 with
       | [], _, _ -> go ()
       | _ ->
         (match Unix.read t.fd buf 0 (Bytes.length buf) with
          | 0 -> Alcotest.fail "connection closed mid-reply"
          | k ->
            Frame.feed_bytes t.fr buf k;
            go ()))
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let wait_exit pid =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        Alcotest.fail "serve did not exit"
      end
      else begin
        Unix.sleepf 0.05;
        go ()
      end
    | _, status -> status
  in
  go ()

let test_tcp_concurrent_clients_match_stdio () =
  let access_path = temp_path ".jsonl" in
  let pid, port, port_path = spawn_serve [ "--access-log"; access_path ] in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove port_path with Sys_error _ -> ());
      try Sys.remove access_path with Sys_error _ -> ())
    (fun () ->
      let n_clients = 3 in
      let per_client = 3 in
      let conns = Array.init n_clients (fun _ -> connect port) in
      (* the global arrival order the stdio reference will replay *)
      let script = ref [] in
      let push line = script := line :: !script in
      (* interleave submits round-robin, then results round-robin —
         every client's replies must be byte-identical to the stdio
         server answering the same global line sequence *)
      let tcp_responses = Array.make (n_clients * per_client * 2) "" in
      let idx = ref 0 in
      for i = 0 to per_client - 1 do
        for c = 0 to n_clients - 1 do
          let line =
            submit_line
              ~id:(Printf.sprintf "c%dq%d" c i)
              ~priority:0
              ~seed:(100 + ((c + (i * n_clients)) mod 4))
          in
          push line;
          send conns.(c) line;
          tcp_responses.(!idx) <- recv conns.(c);
          incr idx
        done
      done;
      for i = 0 to per_client - 1 do
        for c = 0 to n_clients - 1 do
          let line =
            P.request_to_line (P.Result (Printf.sprintf "c%dq%d" c i))
          in
          push line;
          send conns.(c) line;
          tcp_responses.(!idx) <- recv conns.(c);
          incr idx
        done
      done;
      (* stdio reference: same lines, same order, one in-process server *)
      let reference =
        let server = Server.create Server.default_config in
        List.filter_map (Server.handle_line server) (List.rev !script)
      in
      List.iteri
        (fun i expect ->
          Alcotest.(check string)
            (Printf.sprintf "line %d matches stdio" i)
            expect
            tcp_responses.(i))
        reference;
      (* orderly shutdown through client 0 *)
      send conns.(0) (P.request_to_line P.Shutdown);
      let goodbye = recv conns.(0) in
      Alcotest.(check bool) "goodbye is a shutdown ack" true
        (match P.response_of_line goodbye with
         | Ok (P.Goodbye _) -> true
         | _ -> false);
      Array.iter close conns;
      (match wait_exit pid with
       | Unix.WEXITED 0 -> ()
       | Unix.WEXITED c -> Alcotest.failf "serve exited %d" c
       | _ -> Alcotest.fail "serve killed by signal");
      (* every request got its own rid, assigned in arrival order *)
      let rids =
        In_channel.with_open_text access_path In_channel.input_lines
        |> List.filter_map (fun l ->
               match Json.of_string l with
               | Ok j ->
                 (match Json.member "rid" j with
                  | Some (Json.String r) -> Some r
                  | _ -> None)
               | Error _ -> None)
      in
      Alcotest.(check int) "one rid per request"
        (n_clients * per_client)
        (List.length rids);
      Alcotest.(check int) "rids distinct"
        (List.length rids)
        (List.length (List.sort_uniq compare rids)))

let test_tcp_survives_client_disconnect () =
  let pid, port, port_path = spawn_serve [] in
  Fun.protect
    ~finally:(fun () -> try Sys.remove port_path with Sys_error _ -> ())
    (fun () ->
      (* client 1 submits and demands a result, then vanishes without
         reading: the reply hits a dead connection *)
      let c1 = connect port in
      send c1 (submit_line ~id:"gone0" ~priority:0 ~seed:1);
      send c1 (P.request_to_line (P.Result "gone0"));
      close c1;
      (* the listener must still serve client 2 normally *)
      let c2 = connect port in
      send c2 (submit_line ~id:"alive0" ~priority:0 ~seed:2);
      (match P.response_of_line (recv c2) with
       | Ok (P.Submitted { id = "alive0"; _ }) -> ()
       | _ -> Alcotest.fail "second client not served after disconnect");
      send c2 (P.request_to_line P.Shutdown);
      ignore (recv c2);
      close c2;
      match wait_exit pid with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "serve exited %d" c
      | _ -> Alcotest.fail "serve killed by signal")

let suites =
  [
    ( "net.frame",
      [
        Alcotest.test_case "split feeds assemble lines" `Quick
          test_frame_split_feeds;
        Alcotest.test_case "oversized then resync" `Quick
          test_frame_oversized_resync;
        Alcotest.test_case "close surfaces partial line" `Quick
          test_frame_close_surfaces_partial;
      ] );
    ( "net.shard",
      [
        Alcotest.test_case "stable owners in range" `Quick
          test_shard_stable_and_in_range;
        Alcotest.test_case "all slots own keys" `Quick
          test_shard_covers_all_slots;
        prop_shard_remove_remaps_only_owned;
        Alcotest.test_case "validation" `Quick test_shard_validation;
      ] );
    ( "net.interleave",
      [ prop_interleaving_matches_serialized ] );
    ( "net.tcp",
      [
        Alcotest.test_case "concurrent clients match stdio bytes" `Quick
          test_tcp_concurrent_clients_match_stdio;
        Alcotest.test_case "survives client disconnect" `Quick
          test_tcp_survives_client_disconnect;
      ] );
  ]
