The worker fleet is answer-transparent: for the same request script the
single-process server, a clean 2-worker fleet, and a fleet under a
seeded crash/garbage fault schedule produce byte-identical responses
(the shutdown line is stripped because its stats snapshot legitimately
differs: fleet runs append cluster counters).

  $ cat > script.txt <<'EOF'
  > {"op":"submit","id":"c0","benchmark":"PCR","seed":1}
  > {"op":"result","id":"c0"}
  > {"op":"submit","id":"c1","benchmark":"IVD","seed":2}
  > {"op":"result","id":"c1"}
  > {"op":"submit","id":"c2","benchmark":"PCR","seed":1}
  > {"op":"result","id":"c2"}
  > {"op":"shutdown"}
  > EOF
  $ cat > plan.json <<'EOF'
  > {"faults":[{"worker":0,"job":0,"kind":"crash"},{"worker":1,"job":1,"kind":"garbage"}]}
  > EOF
  $ ../../bin/dcsa_synth.exe serve < script.txt | grep -v '"op":"shutdown"' > base.out
  $ ../../bin/dcsa_synth.exe serve --fleet 2 < script.txt | grep -v '"op":"shutdown"' > fleet.out
  $ ../../bin/dcsa_synth.exe serve --fleet 2 --fault-plan plan.json --worker-timeout 10 < script.txt | grep -v '"op":"shutdown"' > chaos.out
  $ cmp base.out fleet.out && cmp base.out chaos.out && echo fleet-transparent
  fleet-transparent

Every injected fault is visible in the shutdown stats: the crashed slot
respawned, the faulted jobs were retried, and both fault kinds were
counted.  (Values are asserted non-zero rather than pinned: a loaded
machine may add spurious timeouts, which recovery absorbs without
changing any response byte.)

  $ ../../bin/dcsa_synth.exe serve --fleet 2 --fault-plan plan.json --worker-timeout 10 < script.txt > full.out
  $ grep -q '"cluster":{' full.out && echo cluster-stats-present
  cluster-stats-present
  $ grep -Eq '"respawns":0[,}]' full.out && echo zero || echo respawns-nonzero
  respawns-nonzero
  $ grep -Eq '"crashes":0[,}]' full.out && echo zero || echo crashes-nonzero
  crashes-nonzero
  $ grep -Eq '"garbage":0[,}]' full.out && echo zero || echo garbage-nonzero
  garbage-nonzero
  $ grep -Eq '"retries":0[,}]' full.out && echo zero || echo retries-nonzero
  retries-nonzero

A fully poisoned fleet (every worker of a 1-worker fleet crashes on its
first job, every life) degrades gracefully: the batch is computed
in-process, responses are still byte-identical, and the degradation is
counted.

  $ cat > poison.json <<'EOF'
  > {"faults":[{"worker":0,"job":0,"kind":"crash"}]}
  > EOF
  $ ../../bin/dcsa_synth.exe serve --fleet 1 --fault-plan poison.json --max-retries 1 --worker-timeout 10 < script.txt | grep -v '"op":"shutdown"' > poisoned.out
  $ cmp base.out poisoned.out && echo degradation-transparent
  degradation-transparent
  $ ../../bin/dcsa_synth.exe serve --fleet 1 --fault-plan poison.json --max-retries 1 --worker-timeout 10 < script.txt | grep -Eq '"degraded":0[,}]' || echo degraded-nonzero
  degraded-nonzero

The worker subcommand itself speaks the protocol one line at a time.

  $ printf '{"op":"submit","id":"w0","benchmark":"PCR"}\n{"op":"shutdown"}\n' | ../../bin/dcsa_synth.exe worker --index 0
  {"ok":true,"op":"result","id":"w0","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"shutdown","stats":{"worker":0,"jobs":1}}
