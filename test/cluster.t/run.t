The worker fleet is answer-transparent: for the same request script the
single-process server, a clean 2-worker fleet, and a fleet under a
seeded crash/garbage fault schedule produce byte-identical responses
(the shutdown line is stripped because its stats snapshot legitimately
differs: fleet runs append cluster counters).

  $ cat > script.txt <<'EOF'
  > {"op":"submit","id":"c0","benchmark":"PCR","seed":1}
  > {"op":"result","id":"c0"}
  > {"op":"submit","id":"c1","benchmark":"IVD","seed":2}
  > {"op":"result","id":"c1"}
  > {"op":"submit","id":"c2","benchmark":"PCR","seed":1}
  > {"op":"result","id":"c2"}
  > {"op":"shutdown"}
  > EOF
  $ cat > plan.json <<'EOF'
  > {"faults":[{"worker":0,"job":0,"kind":"crash"},{"worker":1,"job":1,"kind":"garbage"}]}
  > EOF
  $ ../../bin/dcsa_synth.exe serve < script.txt | grep -v '"op":"shutdown"' > base.out
  $ ../../bin/dcsa_synth.exe serve --fleet 2 < script.txt | grep -v '"op":"shutdown"' > fleet.out
  $ ../../bin/dcsa_synth.exe serve --fleet 2 --fault-plan plan.json --worker-timeout 10 < script.txt | grep -v '"op":"shutdown"' > chaos.out
  $ cmp base.out fleet.out && cmp base.out chaos.out && echo fleet-transparent
  fleet-transparent

Every injected fault is visible in the shutdown stats: the crashed slot
respawned, the faulted jobs were retried, and both fault kinds were
counted.  (Values are asserted non-zero rather than pinned: a loaded
machine may add spurious timeouts, which recovery absorbs without
changing any response byte.)

  $ ../../bin/dcsa_synth.exe serve --fleet 2 --fault-plan plan.json --worker-timeout 10 < script.txt > full.out
  $ grep -q '"cluster":{' full.out && echo cluster-stats-present
  cluster-stats-present
  $ grep -Eq '"respawns":0[,}]' full.out && echo zero || echo respawns-nonzero
  respawns-nonzero
  $ grep -Eq '"crashes":0[,}]' full.out && echo zero || echo crashes-nonzero
  crashes-nonzero
  $ grep -Eq '"garbage":0[,}]' full.out && echo zero || echo garbage-nonzero
  garbage-nonzero
  $ grep -Eq '"retries":0[,}]' full.out && echo zero || echo retries-nonzero
  retries-nonzero

A fully poisoned fleet (every worker of a 1-worker fleet crashes on its
first job, every life) degrades gracefully: the batch is computed
in-process, responses are still byte-identical, and the degradation is
counted.

  $ cat > poison.json <<'EOF'
  > {"faults":[{"worker":0,"job":0,"kind":"crash"}]}
  > EOF
  $ ../../bin/dcsa_synth.exe serve --fleet 1 --fault-plan poison.json --max-retries 1 --worker-timeout 10 < script.txt | grep -v '"op":"shutdown"' > poisoned.out
  $ cmp base.out poisoned.out && echo degradation-transparent
  degradation-transparent
  $ ../../bin/dcsa_synth.exe serve --fleet 1 --fault-plan poison.json --max-retries 1 --worker-timeout 10 < script.txt | grep -Eq '"degraded":0[,}]' || echo degraded-nonzero
  degraded-nonzero

The access log is transport-invariant: fleet runs add only the optional
"fleet" attribution subobject (answering slot, retry count) to each
dispatched record; stripping it recovers the in-process bytes exactly,
even under the chaos schedule — retries and respawns live in the
stripped subobject, never in the core fields.

  $ ../../bin/dcsa_synth.exe serve --access-log base_acc.jsonl < script.txt > /dev/null
  $ ../../bin/dcsa_synth.exe serve --fleet 2 --access-log fleet_acc.jsonl < script.txt > /dev/null
  $ ../../bin/dcsa_synth.exe serve --fleet 2 --fault-plan plan.json --worker-timeout 10 --access-log chaos_acc.jsonl < script.txt > /dev/null
  $ sed 's/,"fleet":{[^}]*}//' fleet_acc.jsonl > fleet_acc.stripped
  $ sed 's/,"fleet":{[^}]*}//' chaos_acc.jsonl > chaos_acc.stripped
  $ cmp base_acc.jsonl fleet_acc.stripped && cmp base_acc.jsonl chaos_acc.stripped && echo access-transport-invariant
  access-transport-invariant
  $ grep -c '"fleet":{"slot":' fleet_acc.jsonl
  2
  $ grep -Eq '"fleet":\{"slot":[0-9]+,"retries":[1-9]' chaos_acc.jsonl && echo chaos-retries-attributed
  chaos-retries-attributed

Per-slot fleet health (respawns, consecutive failures, last outcome, a
reply-size histogram) rides in the stats snapshot, and the Prometheus
exposition carries one dcsa_fleet_reply_bytes series per slot, faceted
by an escaped slot label under a single HELP/TYPE preamble.

  $ grep -q '"slots":\[{"slot":0,' full.out && echo slot-health-present
  slot-health-present
  $ printf '{"op":"submit","id":"s0","benchmark":"PCR"}\n{"op":"result","id":"s0"}\n{"op":"stats","format":"prometheus"}\n' | ../../bin/dcsa_synth.exe serve --fleet 2 > prom_fleet.out
  $ grep -o 'dcsa_fleet_reply_bytes_count{slot=..0..} 1' prom_fleet.out
  dcsa_fleet_reply_bytes_count{slot=\"0\"} 1
  $ grep -o 'dcsa_fleet_reply_bytes_count{slot=..1..} 0' prom_fleet.out
  dcsa_fleet_reply_bytes_count{slot=\"1\"} 0
  $ grep -c 'TYPE dcsa_fleet_reply_bytes histogram' prom_fleet.out
  1

The worker subcommand itself speaks the protocol one line at a time.

  $ printf '{"op":"submit","id":"w0","benchmark":"PCR"}\n{"op":"shutdown"}\n' | ../../bin/dcsa_synth.exe worker --index 0
  {"ok":true,"op":"result","id":"w0","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
  {"ok":true,"op":"shutdown","stats":{"worker":0,"jobs":1}}

A submit carrying trace context makes the worker run under a fresh
per-request sink and ship its span tree back in the reply; with
--vclock (which the serving tier passes under its virtual clock) the
reply is byte-deterministic, spans included.

  $ printf '{"op":"submit","id":"w1","benchmark":"PCR","trace":"t0"}\n' | ../../bin/dcsa_synth.exe worker --index 0 --vclock | grep -c '"spans":\['
  1
  $ printf '{"op":"submit","id":"w1","benchmark":"PCR","trace":"t0"}\n' | ../../bin/dcsa_synth.exe worker --index 0 --vclock > traced1.out
  $ printf '{"op":"submit","id":"w1","benchmark":"PCR","trace":"t0"}\n' | ../../bin/dcsa_synth.exe worker --index 0 --vclock > traced2.out
  $ cmp traced1.out traced2.out && echo traced-reply-deterministic
  traced-reply-deterministic
