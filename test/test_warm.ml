(* The similarity cache and warm-start path: fingerprint properties
   (relabelling / formatting invariance, edit sensitivity, exact-hit
   agreement with the cache key), the warm-vs-cold differential oracle,
   and the server-level eviction regression (repair cache and result
   cache disagreeing about a similarity candidate). *)

module Json = Mfb_util.Json
module Histogram = Mfb_util.Histogram
module Cache_key = Mfb_server.Cache_key
module Sim_index = Mfb_server.Sim_index
module Server = Mfb_server.Server
module Client = Mfb_server.Client
module P = Mfb_server.Protocol
module Warm = Mfb_repair.Warm
module Flow = Mfb_core.Flow
module Config = Mfb_core.Config
module Check = Mfb_schedule.Check
module Allocation = Mfb_component.Allocation

let qtest = Test_util.qtest

let parse_assay text =
  match Mfb_bioassay.Assay_file.parse text with
  | Ok g -> g
  | Error e ->
    Alcotest.failf "assay parse: %a" Mfb_bioassay.Assay_file.pp_error e

(* Small annealing schedule: the oracle synthesizes dozens of designs. *)
let cfg =
  let d = Config.default in
  { d with sa = { d.sa with t0 = 200.; i_max = 40 } }

let alloc = Allocation.of_vector (2, 2, 0, 0)

(* --- random assays, rendered with arbitrary labels and line order --- *)

(* A chain of alternating mix/heat ops with a few forward shortcut
   edges.  [render] can apply an id permutation and shuffle the op/edge
   lines, producing a textually different spelling of the same graph. *)
type rand_assay = { durs : int array; extra : (int * int) list }

let kind_of i = if i mod 2 = 0 then "mix" else "heat"
let fluid_of i = if i mod 2 = 0 then "a" else "b"

let mk_assay rng =
  let n = 4 + Random.State.int rng 6 in
  let durs = Array.init n (fun _ -> 3 + Random.State.int rng 7) in
  let extra =
    List.init (Random.State.int rng 3) (fun _ ->
        let i = Random.State.int rng (n - 2) in
        (i, i + 2 + Random.State.int rng (n - i - 2)))
    |> List.sort_uniq compare
  in
  { durs; extra }

let edges_of a =
  List.init (Array.length a.durs - 1) (fun i -> (i, i + 1)) @ a.extra

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let permutation rng n = Array.of_list (shuffle rng (List.init n Fun.id))

let render ?perm ?shuffle_rng a =
  let n = Array.length a.durs in
  let p = match perm with Some p -> p | None -> Array.init n Fun.id in
  let lines =
    List.init n (fun i ->
        Printf.sprintf "op %d %s %d %s" p.(i) (kind_of i) a.durs.(i)
          (fluid_of i))
    @ List.map
        (fun (i, j) -> Printf.sprintf "edge %d %d" p.(i) p.(j))
        (edges_of a)
  in
  let lines =
    match shuffle_rng with None -> lines | Some rng -> shuffle rng lines
  in
  "assay \"rand\"\nfluid a 4e-7\nfluid b 1e-6\n"
  ^ String.concat "\n" lines ^ "\n"

let fp_of text =
  Sim_index.fingerprint ~config:cfg ~graph:(parse_assay text)
    ~allocation:alloc ()

let key_of text =
  Cache_key.make ~config:cfg ~graph:(parse_assay text) ~allocation:alloc ()

(* degree of logical op [v]: ops whose radius-1 neighborhood contains
   [v]'s label — its parents and children in the chain + shortcuts *)
let degree a v =
  List.length (List.filter (fun (i, j) -> i = v || j = v) (edges_of a))

(* --- fingerprint properties ------------------------------------------- *)

let test_fp_relabel_invariant =
  qtest ~count:50 "fingerprint invariant to relabelling and formatting"
    QCheck2.Gen.int (fun salt ->
      let rng = Random.State.make [| salt; 0x51 |] in
      let a = mk_assay rng in
      let plain = render a in
      let messy =
        render
          ~perm:(permutation rng (Array.length a.durs))
          ~shuffle_rng:rng a
      in
      match Sim_index.distance (fp_of plain) (fp_of messy) with
      | Some d ->
        d.Sim_index.distance = 0
        && d.Sim_index.changed_ops = []
        && Cache_key.equal (key_of plain) (key_of messy)
      | None -> false)

let test_fp_duration_sensitive =
  qtest ~count:50 "fingerprint sensitive to a duration edit"
    QCheck2.Gen.int (fun salt ->
      let rng = Random.State.make [| salt; 0x52 |] in
      let a = mk_assay rng in
      let v = Random.State.int rng (Array.length a.durs) in
      let edited = { a with durs = Array.copy a.durs } in
      edited.durs.(v) <- a.durs.(v) + 1;
      match Sim_index.distance (fp_of (render edited)) (fp_of (render a)) with
      | Some d ->
        (* only the edited op and its direct neighbors may move *)
        d.Sim_index.distance > 0
        && d.Sim_index.distance <= 2 * (1 + degree a v)
        && List.mem v d.Sim_index.changed_ops
      | None -> false)

let test_fp_structure_sensitive =
  qtest ~count:50 "fingerprint sensitive to a structure edit"
    QCheck2.Gen.int (fun salt ->
      let rng = Random.State.make [| salt; 0x53 |] in
      let a = mk_assay rng in
      let n = Array.length a.durs in
      (* append a leaf op fed by the chain tail *)
      let grown =
        {
          durs = Array.append a.durs [| 5 |];
          extra = a.extra;
        }
      in
      match Sim_index.distance (fp_of (render grown)) (fp_of (render a)) with
      | Some d ->
        d.Sim_index.distance > 0
        && d.Sim_index.added >= 1
        && List.mem n d.Sim_index.changed_ops
      | None -> false)

let test_fp_incomparable_allocations () =
  let a = mk_assay (Random.State.make [| 3 |]) in
  let g = parse_assay (render a) in
  let f1 = Sim_index.fingerprint ~config:cfg ~graph:g ~allocation:alloc () in
  let f2 =
    Sim_index.fingerprint ~config:cfg ~graph:g
      ~allocation:(Allocation.of_vector (3, 1, 0, 0))
      ()
  in
  Alcotest.(check bool) "different alloc incomparable" true
    (Sim_index.distance f1 f2 = None)

let test_nearest_exact_at_distance_zero =
  qtest ~count:25 "nearest returns the exact entry at distance 0"
    QCheck2.Gen.int (fun salt ->
      let rng = Random.State.make [| salt; 0x54 |] in
      let idx = Sim_index.create ~threshold:8 () in
      let assays = List.init 5 (fun _ -> mk_assay rng) in
      List.iteri
        (fun i a -> Sim_index.add idx (key_of (render a)) (fp_of (render a)) i)
        assays;
      let probe = List.nth assays (Random.State.int rng 5) in
      (* probe with a reformatted spelling of an inserted request *)
      let messy =
        render
          ~perm:(permutation rng (Array.length probe.durs))
          ~shuffle_rng:rng probe
      in
      let key = key_of messy in
      match Sim_index.nearest idx key (fp_of messy) with
      | Some (k, _, d) ->
        (* agrees with a Cache_key exact hit *)
        d.Sim_index.distance = 0 && Cache_key.equal k key
      | None -> false)

let test_index_bounded_and_ordered () =
  let idx = Sim_index.create ~capacity:2 ~threshold:8 () in
  let texts =
    List.map render
      (List.init 3 (fun i -> mk_assay (Random.State.make [| i; 0x55 |])))
  in
  List.iteri (fun i t -> Sim_index.add idx (key_of t) (fp_of t) i) texts;
  Alcotest.(check int) "bounded" 2 (Sim_index.length idx);
  Alcotest.(check bool) "oldest evicted" false
    (Sim_index.mem idx (key_of (List.nth texts 0)));
  Alcotest.(check bool) "newest kept" true
    (Sim_index.mem idx (key_of (List.nth texts 2)))

(* --- the warm-vs-cold differential oracle ----------------------------- *)

(* For a random assay and a random single edit, a warm start seeded by
   the unedited synthesis must either produce a legal design within
   (1 + delta) of the edited request's cold synthesis, or fall back —
   and the fallback must be counted.  Also checks the quality-gate
   lemma the server relies on: the cold makespan is bounded below by
   the pre-routing schedule makespan. *)
let warm_oracle =
  let delta = 0.25 in
  qtest ~count:12 "warm result legal and within delta of cold"
    QCheck2.Gen.int (fun salt ->
      let rng = Random.State.make [| salt; 0x56 |] in
      let a = mk_assay rng in
      let edited =
        if Random.State.bool rng then begin
          (* duration tweak *)
          let e = { a with durs = Array.copy a.durs } in
          let v = Random.State.int rng (Array.length a.durs) in
          e.durs.(v) <- 3 + ((a.durs.(v) - 3 + 1) mod 7);
          e
        end
        else (* append a leaf op *)
          { a with durs = Array.append a.durs [| 4 |] }
      in
      let g0 = parse_assay (render a)
      and g1 = parse_assay (render edited) in
      let cached = Flow.run ~config:cfg ~jobs:1 g0 alloc in
      Test_util.with_fake_sink (fun sink ->
          match Warm.synthesize ~config:cfg ~cached ~delta g1 alloc with
          | Ok (r, report) ->
            let cold = Flow.run ~config:cfg ~jobs:1 g1 alloc in
            Check.validate ~tc:cfg.tc r.schedule = []
            && r.execution_time <= (cold.execution_time *. (1. +. delta)) +. 1e-9
            && cold.execution_time >= report.Warm.makespan_lb -. 1e-9
            && report.Warm.makespan <= (report.Warm.makespan_lb *. (1. +. delta)) +. 1e-9
            && Mfb_util.Telemetry.counter_total sink ~cat:"warm" "fallbacks" = 0
          | Error reason ->
            String.length reason > 0
            && Mfb_util.Telemetry.counter_total sink ~cat:"warm" "fallbacks" = 1))

let test_warm_distance_zero_replays_bytes () =
  (* A warm start of the *same* request must reproduce the cached
     summary byte for byte — the cold-recompute path after a
     summary-cache eviction depends on it. *)
  let a = mk_assay (Random.State.make [| 11; 0x57 |]) in
  let g = parse_assay (render a) in
  let cached = Flow.run ~config:cfg ~jobs:1 g alloc in
  match Warm.synthesize ~config:cfg ~cached ~delta:0.25 g alloc with
  | Ok (r, report) ->
    Alcotest.(check string) "summary bytes"
      (Json.to_string (Mfb_core.Result.summary_to_json
                         (Mfb_core.Result.summarize cached)))
      (Json.to_string (Mfb_core.Result.summary_to_json
                         (Mfb_core.Result.summarize r)));
    Alcotest.(check int) "nothing rerouted" 0
      (report.Warm.rerouted + report.Warm.rerouted_delayed)
  | Error e -> Alcotest.failf "distance-0 warm start fell back: %s" e

(* --- server eviction regression --------------------------------------- *)

let base_assay =
  "assay \"evict\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 mix 5 a\n\
   op 1 heat 4 b\n\
   op 2 mix 6 a\n\
   edge 0 1\n\
   edge 1 2\n"

(* single-op edit of [base_assay]: op 1's duration 4 -> 6 *)
let edited_assay =
  "assay \"evict\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 mix 5 a\n\
   op 1 heat 6 b\n\
   op 2 mix 6 a\n\
   edge 0 1\n\
   edge 1 2\n"

(* unrelated filler whose computation evicts the base full result from
   a 1-entry repair cache; a different allocation keeps it out of the
   similarity candidate set *)
let filler_assay =
  "assay \"filler\"\n\
   fluid a 4e-7\n\
   fluid b 1e-6\n\
   op 0 heat 3 b\n\
   op 1 mix 7 a\n\
   op 2 heat 5 b\n\
   edge 0 1\n\
   edge 1 2\n"

let submit_assay ?(alloc = (2, 2, 0, 0)) ~id text =
  P.Submit
    {
      id;
      priority = 0;
      deadline = None;
      flow = `Ours;
      spec = P.Assay { text; alloc = Some alloc };
      overrides = P.no_overrides;
      trace = None;
    }

let call_exn client req =
  match Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "call failed: %s" e

let result_bytes client id =
  match call_exn client (P.Result id) with
  | P.Job_result { result; _ } -> Json.to_string result
  | r -> Alcotest.failf "result %s: %s" id (P.response_to_line r)

let warm_server ~repair_cache () =
  Server.create
    {
      Server.default_config with
      cache_capacity = 128;
      repair_cache;
      similarity = true;
    }

let test_eviction_cold_recompute_path () =
  (* Retained seed: base's full result is still in the repair cache
     when the edit arrives — the warm start observes 1 virtual tick. *)
  let s1 = warm_server ~repair_cache:8 () in
  let c1 = Client.in_process s1 in
  ignore (call_exn c1 (submit_assay ~id:"a" base_assay));
  ignore (result_bytes c1 "a");
  ignore (call_exn c1 (submit_assay ~id:"b" edited_assay));
  let warm_kept = result_bytes c1 "b" in
  (* Evicted seed: a 1-entry repair cache loses base's full result to
     the filler before the edit arrives.  The similarity index still
     names base as the candidate — the server must re-synthesize the
     seed cold (2 ticks) and produce the *same* warm payload. *)
  let s2 = warm_server ~repair_cache:1 () in
  let c2 = Client.in_process s2 in
  ignore (call_exn c2 (submit_assay ~id:"a" base_assay));
  ignore (result_bytes c2 "a");
  ignore (call_exn c2 (submit_assay ~alloc:(3, 1, 0, 0) ~id:"f" filler_assay));
  ignore (result_bytes c2 "f");
  ignore (call_exn c2 (submit_assay ~id:"b" edited_assay));
  let warm_evicted = result_bytes c2 "b" in
  Alcotest.(check string) "payload survives seed eviction" warm_kept
    warm_evicted;
  Alcotest.(check (pair int int)) "near-hit counted, no fallback" (1, 0)
    (Server.near_hit_counts s1);
  Alcotest.(check (pair int int)) "near-hit counted after eviction" (1, 0)
    (Server.near_hit_counts s2);
  let h1 = Server.warm_latency_histogram s1
  and h2 = Server.warm_latency_histogram s2 in
  Alcotest.(check int) "one warm start (kept)" 1 (Histogram.count h1);
  Alcotest.(check int) "one warm start (evicted)" 1 (Histogram.count h2);
  Alcotest.(check (float 1e-9)) "kept seed observes 1 tick" 1.0
    (Histogram.sum h1);
  Alcotest.(check (float 1e-9)) "evicted seed observes 2 ticks" 2.0
    (Histogram.sum h2)

let test_similarity_off_no_near_hits () =
  let s = Server.create { Server.default_config with cache_capacity = 128 } in
  let c = Client.in_process s in
  ignore (call_exn c (submit_assay ~id:"a" base_assay));
  ignore (result_bytes c "a");
  ignore (call_exn c (submit_assay ~id:"b" edited_assay));
  ignore (result_bytes c "b");
  Alcotest.(check (pair int int)) "no near path" (0, 0)
    (Server.near_hit_counts s)

let suites =
  [
    ( "server.sim_index",
      [
        test_fp_relabel_invariant;
        test_fp_duration_sensitive;
        test_fp_structure_sensitive;
        Alcotest.test_case "different allocations incomparable" `Quick
          test_fp_incomparable_allocations;
        test_nearest_exact_at_distance_zero;
        Alcotest.test_case "index bounded, oldest dropped" `Quick
          test_index_bounded_and_ordered;
      ] );
    ( "repair.warm",
      [
        warm_oracle;
        Alcotest.test_case "distance-0 warm start replays bytes" `Quick
          test_warm_distance_zero_replays_bytes;
      ] );
    ( "server.warm",
      [
        Alcotest.test_case "evicted seed recomputes cold, same bytes" `Quick
          test_eviction_cold_recompute_path;
        Alcotest.test_case "similarity off stays cold" `Quick
          test_similarity_off_no_near_hits;
      ] );
  ]
