(* Tests for the worker fleet: fault plans, the worker servant, pipe
   plumbing, supervision, and the end-to-end byte-identity contract —
   for any batch and any seeded fault schedule, fleet dispatch returns
   exactly the payload bytes of in-process synthesis. *)

module Json = Mfb_util.Json
module Telemetry = Mfb_util.Telemetry
module Config = Mfb_core.Config
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Fault = Mfb_cluster.Fault
module Worker_main = Mfb_cluster.Worker_main
module Worker_proc = Mfb_cluster.Worker_proc
module Supervisor = Mfb_cluster.Supervisor
module Cluster = Mfb_cluster.Cluster

(* Resolve the CLI binary next to this test executable so the tests work
   from any cwd (dune runtest and dune exec differ). *)
let worker_bin =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "../bin/dcsa_synth.exe"

let resolve ?seed ?(flow = `Ours) bench =
  let overrides = { P.no_overrides with P.o_seed = seed } in
  match
    Server.resolve ~base:Config.default ~flow ~overrides (P.Benchmark bench)
  with
  | Ok job -> job
  | Error e -> Alcotest.failf "resolve %s: %s" bench e

(* --- fault plans --- *)

let sample_plan =
  [
    { Fault.worker = 0; job = 0; kind = Fault.Crash };
    { Fault.worker = 1; job = 2; kind = Fault.Stall };
    { Fault.worker = 0; job = 1; kind = Fault.Garbage };
    { Fault.worker = 1; job = 0; kind = Fault.Truncate };
    { Fault.worker = 0; job = 3; kind = Fault.Slow 0.05 };
  ]

let test_fault_json_round_trip () =
  match Fault.of_json (Fault.to_json sample_plan) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok plan ->
    Alcotest.(check bool) "round trip" true (plan = sample_plan)

let test_fault_file_round_trip () =
  let path = Filename.temp_file "fault_plan" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fault.to_file path sample_plan;
      match Fault.of_file path with
      | Error e -> Alcotest.failf "of_file: %s" e
      | Ok plan ->
        Alcotest.(check bool) "file round trip" true (plan = sample_plan))

let test_fault_lookup () =
  Alcotest.(check bool)
    "hit" true
    (Fault.lookup sample_plan ~worker:1 ~job:2 = Some Fault.Stall);
  Alcotest.(check bool)
    "miss" true
    (Fault.lookup sample_plan ~worker:2 ~job:0 = None);
  (* first matching entry wins *)
  let shadowed =
    { Fault.worker = 0; job = 0; kind = Fault.Garbage } :: sample_plan
  in
  Alcotest.(check bool)
    "first wins" true
    (Fault.lookup shadowed ~worker:0 ~job:0 = Some Fault.Garbage)

let test_fault_generate_deterministic () =
  let g () = Fault.generate ~seed:42 ~workers:3 ~max_job:5 ~rate:0.4 () in
  Alcotest.(check bool) "same seed same plan" true (g () = g ());
  let full = Fault.generate ~seed:1 ~workers:2 ~max_job:3 ~rate:1.0 () in
  Alcotest.(check int) "rate 1 covers every pair" 8 (List.length full);
  Alcotest.(check bool)
    "rate 0 is empty" true
    (Fault.is_empty (Fault.generate ~seed:1 ~workers:2 ~max_job:3 ~rate:0.0 ()))

(* --- the worker servant, run in-process --- *)

let run_worker ?fault lines =
  let req = Filename.temp_file "worker_req" ".txt" in
  let resp = Filename.temp_file "worker_resp" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req;
      Sys.remove resp)
    (fun () ->
      Out_channel.with_open_text req (fun oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines);
      In_channel.with_open_text req (fun ic ->
          Out_channel.with_open_text resp (fun oc ->
              Worker_main.run ?fault ~index:0 ~config:Config.default ic oc));
      In_channel.with_open_text resp In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun s -> s <> ""))

let submit_line ?seed ?(id = "j0") bench =
  P.request_to_line
    (P.Submit
       {
         id;
         priority = 0;
         deadline = None;
         flow = `Ours;
         spec = P.Benchmark bench;
         overrides = { P.no_overrides with P.o_seed = seed };
         trace = None;
       })

let expected_result_line ?seed ?(id = "j0") bench =
  let job = resolve ?seed bench in
  P.response_to_line
    (P.Job_result
       {
         id;
         key = Mfb_server.Cache_key.to_hex job.Server.key;
         result = Server.run_job job;
         spans = None;
       })

let test_worker_answers_submit () =
  match run_worker [ submit_line "PCR" ] with
  | [ line ] ->
    Alcotest.(check string)
      "worker answer = in-process answer" (expected_result_line "PCR") line
  | lines -> Alcotest.failf "expected 1 line, got %d" (List.length lines)

let test_worker_protocol_surface () =
  let lines =
    run_worker
      [
        "# comment";
        "";
        "not json";
        {|{"op":"status","id":"x"}|};
        P.request_to_line P.Stats;
        P.request_to_line P.Shutdown;
        submit_line ~id:"after-shutdown" "PCR";
      ]
  in
  (match lines with
   | [ bad_json; bad_op; stats; goodbye ] ->
     let is_error l =
       match P.response_of_line l with
       | Ok (P.Bad_request _) -> true
       | _ -> false
     in
     Alcotest.(check bool) "malformed line -> error" true (is_error bad_json);
     Alcotest.(check bool) "status -> error" true (is_error bad_op);
     (match P.response_of_line stats with
      | Ok (P.Stats_reply (Json.Obj fields)) ->
        Alcotest.(check bool)
          "heartbeat carries slot" true
          (List.assoc_opt "worker" fields = Some (Json.Int 0))
      | _ -> Alcotest.fail "expected stats reply");
     (match P.response_of_line goodbye with
      | Ok (P.Goodbye _) -> ()
      | _ -> Alcotest.fail "expected goodbye");
     (* nothing answered after shutdown *)
     ()
   | lines -> Alcotest.failf "expected 4 lines, got %d" (List.length lines))

let test_worker_garbage_fault () =
  let fault = [ { Fault.worker = 0; job = 0; kind = Fault.Garbage } ] in
  match run_worker ~fault [ submit_line "PCR"; submit_line ~id:"j1" "IVD" ] with
  | [ garbage; ok ] ->
    Alcotest.(check bool)
      "garbage line is unparseable" true
      (match P.response_of_line garbage with Error _ -> true | Ok _ -> false);
    (* the worker survives a garbage fault and answers the next job *)
    Alcotest.(check string)
      "next job normal" (expected_result_line ~id:"j1" "IVD") ok
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

let test_worker_slow_fault_answers_normally () =
  let fault = [ { Fault.worker = 0; job = 0; kind = Fault.Slow 0.01 } ] in
  match run_worker ~fault [ submit_line "PCR" ] with
  | [ line ] ->
    Alcotest.(check string)
      "slow answer identical" (expected_result_line "PCR") line
  | lines -> Alcotest.failf "expected 1 line, got %d" (List.length lines)

(* --- pipe plumbing --- *)

let test_worker_proc_echo_and_eof () =
  let w = Worker_proc.spawn ~slot:0 [| "cat" |] in
  Fun.protect
    ~finally:(fun () -> Worker_proc.kill w)
    (fun () ->
      Alcotest.(check bool)
        "send" true
        (Worker_proc.send_line w "hello" = Ok ());
      Alcotest.(check bool)
        "echo" true
        (Worker_proc.recv_line ~timeout:5.0 w = Worker_proc.Line "hello");
      (* cat echoes requests, not stats replies: ping must fail *)
      Alcotest.(check bool) "ping cat" false (Worker_proc.ping ~timeout:5.0 w);
      Unix.kill (Worker_proc.pid w) Sys.sigkill;
      ignore (Unix.waitpid [] (Worker_proc.pid w));
      Alcotest.(check bool)
        "killed worker reads EOF" true
        (Worker_proc.recv_line ~timeout:5.0 w = Worker_proc.Eof))

let test_worker_proc_timeout () =
  let w = Worker_proc.spawn ~slot:0 [| "cat" |] in
  Fun.protect
    ~finally:(fun () -> Worker_proc.kill w)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Alcotest.(check bool)
        "no line -> timeout" true
        (Worker_proc.recv_line ~timeout:0.1 w = Worker_proc.Timeout);
      Alcotest.(check bool)
        "deadline respected" true
        (Unix.gettimeofday () -. t0 < 2.0))

let test_worker_proc_ping_real_worker () =
  let w = Worker_proc.spawn ~slot:3 [| worker_bin; "worker"; "--index"; "3" |] in
  Fun.protect
    ~finally:(fun () -> Worker_proc.kill w)
    (fun () ->
      Alcotest.(check bool) "ping" true (Worker_proc.ping ~timeout:10.0 w))

(* --- supervision --- *)

let test_supervisor_respawns_with_backoff () =
  let sup = Supervisor.create ~size:1 ~backoff_cap:8 (fun _ -> [| "cat" |]) in
  Fun.protect
    ~finally:(fun () -> Supervisor.stop sup)
    (fun () ->
      Alcotest.(check int) "idle before first tick" 0
        (List.length (Supervisor.live sup));
      Supervisor.tick sup;
      Alcotest.(check int) "spawned" 1 (List.length (Supervisor.live sup));
      Alcotest.(check int) "first spawn is not a respawn" 0
        (Supervisor.respawns sup);
      (* first failure: streak 1, back off one tick *)
      Supervisor.fail sup 0;
      Alcotest.(check int) "dead after fail" 0
        (List.length (Supervisor.live sup));
      Supervisor.tick sup;
      Alcotest.(check int) "respawned after one tick" 1
        (List.length (Supervisor.live sup));
      Alcotest.(check int) "respawn counted" 1 (Supervisor.respawns sup);
      (* second consecutive failure: streak 2, two-tick backoff *)
      Supervisor.fail sup 0;
      Supervisor.tick sup;
      Alcotest.(check int) "still backing off" 0
        (List.length (Supervisor.live sup));
      Supervisor.tick sup;
      Alcotest.(check int) "respawned after two ticks" 1
        (List.length (Supervisor.live sup));
      (* success resets the streak: next failure is one tick again *)
      Supervisor.succeed sup 0;
      Supervisor.fail sup 0;
      Supervisor.tick sup;
      Alcotest.(check int) "streak reset" 1
        (List.length (Supervisor.live sup)))

let test_supervisor_stop_is_final () =
  let sup = Supervisor.create ~size:2 (fun _ -> [| "cat" |]) in
  Supervisor.tick sup;
  Alcotest.(check int) "both up" 2 (List.length (Supervisor.live sup));
  Supervisor.stop sup;
  Alcotest.(check int) "all down" 0 (List.length (Supervisor.live sup));
  Supervisor.tick sup;
  Alcotest.(check int) "stop sticks" 0 (List.length (Supervisor.live sup))

(* --- the fleet end to end --- *)

let with_cluster ?plan ?(size = 2) ?(timeout = 10.0) ?(max_retries = 2) f =
  let plan_file =
    Option.map
      (fun plan ->
        let path = Filename.temp_file "cluster_plan" ".json" in
        Fault.to_file path plan;
        path)
      plan
  in
  let worker_argv slot =
    Array.of_list
      ([ worker_bin; "worker"; "--index"; string_of_int slot ]
      @ match plan_file with
        | None -> []
        | Some path -> [ "--fault-plan"; path ])
  in
  let cluster =
    Cluster.create
      {
        (Cluster.default_config ~worker_argv ~size) with
        timeout;
        hb_timeout = 10.0;
        max_retries;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.stop cluster;
      Option.iter Sys.remove plan_file)
    (fun () -> f cluster)

let check_payloads name jobs results =
  let expected = List.map Server.run_job jobs in
  Alcotest.(check (list string))
    name
    (List.map Json.to_string expected)
    (List.map (fun r -> Json.to_string r.Server.d_payload) results)

let test_cluster_clean_dispatch () =
  let jobs = [ resolve "PCR"; resolve "IVD"; resolve ~seed:7 "PCR" ] in
  with_cluster (fun cluster ->
      check_payloads "clean fleet = in-process" jobs (Cluster.dispatch cluster jobs);
      let s = Cluster.stats cluster in
      Alcotest.(check int) "all dispatched" 3 s.Mfb_cluster.Dispatcher.dispatched;
      Alcotest.(check int) "no degradation" 0 s.Mfb_cluster.Dispatcher.degraded;
      Alcotest.(check int) "no respawns" 0 (Cluster.respawns cluster))

let test_cluster_chaos_recovery () =
  (* slot 0 crashes on every first job of every life; slot 1 garbles its
     second.  Every recovery path must land on the identical bytes. *)
  let plan =
    [
      { Fault.worker = 0; job = 0; kind = Fault.Crash };
      { Fault.worker = 1; job = 1; kind = Fault.Garbage };
    ]
  in
  let jobs =
    [ resolve "PCR"; resolve "IVD"; resolve ~seed:3 "PCR"; resolve ~seed:4 "IVD" ]
  in
  with_cluster ~plan ~timeout:5.0 (fun cluster ->
      check_payloads "chaos fleet = in-process" jobs
        (Cluster.dispatch cluster jobs);
      let s = Cluster.stats cluster in
      Alcotest.(check bool) "crashes seen" true
        (s.Mfb_cluster.Dispatcher.crashes > 0);
      Alcotest.(check bool) "retries seen" true
        (s.Mfb_cluster.Dispatcher.retries > 0);
      Alcotest.(check bool) "respawns seen" true (Cluster.respawns cluster > 0))

let test_cluster_stall_hits_deadline () =
  let plan = [ { Fault.worker = 0; job = 0; kind = Fault.Stall } ] in
  let jobs = [ resolve "PCR" ] in
  with_cluster ~plan ~timeout:0.5 (fun cluster ->
      check_payloads "stalled fleet = in-process" jobs
        (Cluster.dispatch cluster jobs);
      let s = Cluster.stats cluster in
      Alcotest.(check bool) "timeout seen" true
        (s.Mfb_cluster.Dispatcher.timeouts > 0))

let test_cluster_truncate_reads_as_garbage () =
  (* A truncated response is a partial line at EOF: it surfaces as a
     line, fails to parse, and takes the garbage path. *)
  let plan = [ { Fault.worker = 0; job = 0; kind = Fault.Truncate } ] in
  let jobs = [ resolve "PCR" ] in
  with_cluster ~plan ~timeout:5.0 (fun cluster ->
      check_payloads "truncated fleet = in-process" jobs
        (Cluster.dispatch cluster jobs);
      let s = Cluster.stats cluster in
      Alcotest.(check bool) "garbage seen" true
        (s.Mfb_cluster.Dispatcher.garbage > 0))

let test_cluster_total_poisoning_degrades () =
  (* Every worker (and every respawn) crashes on its first job: retries
     exhaust and the batch degrades to in-process — same bytes. *)
  let plan =
    [
      { Fault.worker = 0; job = 0; kind = Fault.Crash };
      { Fault.worker = 1; job = 0; kind = Fault.Crash };
    ]
  in
  let jobs = [ resolve "PCR" ] in
  with_cluster ~plan ~timeout:5.0 (fun cluster ->
      check_payloads "poisoned fleet = in-process" jobs
        (Cluster.dispatch cluster jobs);
      let s = Cluster.stats cluster in
      Alcotest.(check bool) "degraded" true
        (s.Mfb_cluster.Dispatcher.degraded > 0))

let test_cluster_stats_json_shape () =
  with_cluster ~size:1 (fun cluster ->
      ignore (Cluster.dispatch cluster [ resolve "PCR" ]);
      match Cluster.stats_json cluster with
      | Json.Obj fields ->
        List.iter
          (fun k ->
            Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k fields))
          [ "fleet"; "respawns"; "dispatched"; "retries"; "degraded";
            "crashes"; "timeouts"; "garbage"; "heartbeat_failures"; "slots" ];
        (match List.assoc "slots" fields with
         | Json.List [ Json.Obj slot ] ->
           List.iter
             (fun k ->
               Alcotest.(check bool) ("slot has " ^ k) true
                 (List.mem_assoc k slot))
             [ "slot"; "respawns"; "consecutive_failures"; "ok";
               "last_outcome"; "reply_bytes" ];
           Alcotest.(check bool) "slot 0 answered" true
             (List.assoc "last_outcome" slot = Json.String "ok")
         | _ -> Alcotest.fail "slots must be a one-element list")
      | _ -> Alcotest.fail "stats_json must be an object")

let test_cluster_ships_worker_spans () =
  (* With a sink installed on the supervisor side, every dispatched job
     asks its worker to trace; the reply carries the worker's span tree
     and the dispatch result records the answering slot. *)
  let jobs = [ resolve "PCR"; resolve ~seed:5 "IVD" ] in
  Test_util.with_fake_sink (fun _sink ->
      with_cluster ~size:1 (fun cluster ->
          let results = Cluster.dispatch cluster jobs in
          Alcotest.(check int) "one result per job" 2 (List.length results);
          List.iter
            (fun r ->
              Alcotest.(check bool) "answering slot recorded" true
                (r.Server.d_slot = Some 0);
              Alcotest.(check int) "first attempt" 1 r.Server.d_attempts;
              (* the worker's forest holds the request root plus any
                 pool-domain collectors its flow run spawned *)
              match
                List.find_opt
                  (fun n -> n.Telemetry.n_name = "request")
                  r.Server.d_spans
              with
              | Some root ->
                Alcotest.(check bool) "span args carry trace ctx" true
                  (List.mem_assoc "ctx" root.Telemetry.n_args)
              | None ->
                Alcotest.failf "no request root among %d worker spans"
                  (List.length r.Server.d_spans))
            results));
  (* without a sink the wire carries no trace and no spans come back *)
  with_cluster ~size:1 (fun cluster ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "no spans without a sink" true
            (r.Server.d_spans = []))
        (Cluster.dispatch cluster jobs))

(* --- the qcheck byte-identity property --- *)

let batch_gen =
  QCheck2.Gen.(
    list_size (1 -- 4) (pair (oneofl [ "PCR"; "IVD" ]) (0 -- 5)))

let qtest_cluster =
  (* For any job batch and any seeded fault schedule on half the fleet
     (slot 0 of 2; slot 0 always crashes on its first job so every run
     provably exercises recovery), payloads are byte-identical to
     in-process synthesis, and the faults are visible in telemetry. *)
  Test_util.qtest ~count:4 "fleet byte-identity under seeded faults"
    QCheck2.Gen.(pair batch_gen (0 -- 1000))
    (fun (batch, fault_seed) ->
      let jobs = List.map (fun (b, s) -> resolve ~seed:s b) batch in
      let plan =
        { Fault.worker = 0; job = 0; kind = Fault.Crash }
        :: Fault.generate ~seed:fault_seed ~workers:1 ~max_job:2 ~rate:0.5 ()
      in
      Test_util.with_fake_sink (fun sink ->
          with_cluster ~plan ~timeout:5.0 (fun cluster ->
              let results = Cluster.dispatch cluster jobs in
              let expected = List.map Server.run_job jobs in
              let identical =
                List.map
                  (fun r -> Json.to_string r.Server.d_payload)
                  results
                = List.map Json.to_string expected
              in
              let s = Cluster.stats cluster in
              let counters_moved =
                s.Mfb_cluster.Dispatcher.crashes > 0
                && s.Mfb_cluster.Dispatcher.retries > 0
                && Cluster.respawns cluster > 0
              in
              (* dispatcher and supervisor mirror into telemetry *)
              let mirrored =
                Telemetry.counter_total sink ~cat:"cluster" "crashes"
                = s.Mfb_cluster.Dispatcher.crashes
                && Telemetry.counter_total sink ~cat:"cluster" "respawns"
                   = Cluster.respawns cluster
                && Telemetry.counter_total sink ~cat:"cluster" "retries"
                   = s.Mfb_cluster.Dispatcher.retries
              in
              identical && counters_moved && mirrored)))

let suites =
  [
    ( "cluster.fault",
      [
        Alcotest.test_case "plan JSON round-trip" `Quick
          test_fault_json_round_trip;
        Alcotest.test_case "plan file round-trip" `Quick
          test_fault_file_round_trip;
        Alcotest.test_case "lookup first-match" `Quick test_fault_lookup;
        Alcotest.test_case "generate is seeded and pure" `Quick
          test_fault_generate_deterministic;
      ] );
    ( "cluster.worker",
      [
        Alcotest.test_case "submit answer = in-process" `Quick
          test_worker_answers_submit;
        Alcotest.test_case "protocol surface" `Quick
          test_worker_protocol_surface;
        Alcotest.test_case "garbage fault then recovery" `Quick
          test_worker_garbage_fault;
        Alcotest.test_case "slow fault answers normally" `Quick
          test_worker_slow_fault_answers_normally;
      ] );
    ( "cluster.proc",
      [
        Alcotest.test_case "echo, ping, EOF" `Quick
          test_worker_proc_echo_and_eof;
        Alcotest.test_case "recv deadline" `Quick test_worker_proc_timeout;
        Alcotest.test_case "ping a real worker" `Quick
          test_worker_proc_ping_real_worker;
      ] );
    ( "cluster.supervisor",
      [
        Alcotest.test_case "respawn with capped backoff" `Quick
          test_supervisor_respawns_with_backoff;
        Alcotest.test_case "stop is final" `Quick test_supervisor_stop_is_final;
      ] );
    ( "cluster.dispatch",
      [
        Alcotest.test_case "clean fleet matches in-process" `Quick
          test_cluster_clean_dispatch;
        Alcotest.test_case "chaos recovery is byte-identical" `Quick
          test_cluster_chaos_recovery;
        Alcotest.test_case "stall hits the deadline" `Quick
          test_cluster_stall_hits_deadline;
        Alcotest.test_case "truncate reads as garbage" `Quick
          test_cluster_truncate_reads_as_garbage;
        Alcotest.test_case "total poisoning degrades" `Quick
          test_cluster_total_poisoning_degrades;
        Alcotest.test_case "stats json shape" `Quick
          test_cluster_stats_json_shape;
        Alcotest.test_case "worker spans ship back under a sink" `Quick
          test_cluster_ships_worker_spans;
        qtest_cluster;
      ] );
  ]
