(* Tests for the generic substrates in Mfb_util. *)

module Pqueue = Mfb_util.Pqueue
module Interval = Mfb_util.Interval
module Interval_set = Mfb_util.Interval_set
module Rng = Mfb_util.Rng
module Dsu = Mfb_util.Dsu
module Stats = Mfb_util.Stats
module Table = Mfb_util.Table
module Json = Mfb_util.Json

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  (* A per-test fixed seed keeps property tests reproducible run to run. *)
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

(* --- Pqueue --- *)

let test_pqueue_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek" true (Pqueue.peek q = None)

let test_pqueue_order () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (fun p -> Pqueue.push q p (string_of_int p)) [ 5; 1; 4; 2; 3 ];
  let popped = List.init 5 (fun _ -> fst (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] popped

let test_pqueue_max_via_cmp () =
  let q = Pqueue.create ~cmp:(fun a b -> compare b a) in
  List.iter (fun p -> Pqueue.push q p p) [ 5; 1; 4 ];
  Alcotest.(check int) "max first" 5 (fst (Option.get (Pqueue.pop q)))

let test_pqueue_peek_stable () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 2 "b";
  Pqueue.push q 1 "a";
  Alcotest.(check int) "peek min" 1 (fst (Option.get (Pqueue.peek q)));
  Alcotest.(check int) "length unchanged" 2 (Pqueue.length q)

let test_pqueue_interleaved () =
  let q = Pqueue.create ~cmp:compare in
  Pqueue.push q 3 ();
  Pqueue.push q 1 ();
  Alcotest.(check int) "first pop" 1 (fst (Option.get (Pqueue.pop q)));
  Pqueue.push q 2 ();
  Alcotest.(check int) "second pop" 2 (fst (Option.get (Pqueue.pop q)));
  Alcotest.(check int) "third pop" 3 (fst (Option.get (Pqueue.pop q)))

let test_pqueue_to_list () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (fun p -> Pqueue.push q p p) [ 3; 1; 2 ];
  let items = List.sort compare (List.map fst (Pqueue.to_list q)) in
  Alcotest.(check (list int)) "all present" [ 1; 2; 3 ] items;
  Alcotest.(check int) "length unchanged" 3 (Pqueue.length q)

let prop_pqueue_sorts =
  qtest "pqueue pops in sorted order"
    QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (fun x -> Pqueue.push q x x) xs;
      let popped =
        List.init (List.length xs) (fun _ -> fst (Option.get (Pqueue.pop q)))
      in
      popped = List.sort compare xs)

let prop_pqueue_length =
  qtest "pqueue length tracks pushes"
    QCheck2.Gen.(list_size (int_bound 100) int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (fun x -> Pqueue.push q x ()) xs;
      Pqueue.length q = List.length xs)

(* --- Interval --- *)

let test_interval_make_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo")
    (fun () -> ignore (Interval.make 2. 1.));
  Alcotest.check_raises "nan"
    (Invalid_argument "Interval.make: non-finite bound") (fun () ->
      ignore (Interval.make Float.nan 1.))

let test_interval_basics () =
  let iv = Interval.make 1. 4. in
  check_float "lo" 1. (Interval.lo iv);
  check_float "hi" 4. (Interval.hi iv);
  check_float "duration" 3. (Interval.duration iv);
  Alcotest.(check bool) "not empty" false (Interval.is_empty iv);
  Alcotest.(check bool) "empty" true (Interval.is_empty (Interval.make 2. 2.))

let test_interval_overlap () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 3. in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  let c = Interval.make 2. 4. in
  Alcotest.(check bool) "half-open adjacency" false (Interval.overlaps a c);
  let e = Interval.make 1. 1. in
  Alcotest.(check bool) "empty overlaps nothing" false (Interval.overlaps a e)

let test_interval_contains () =
  let iv = Interval.make 1. 3. in
  Alcotest.(check bool) "lo included" true (Interval.contains iv 1.);
  Alcotest.(check bool) "hi excluded" false (Interval.contains iv 3.);
  Alcotest.(check bool) "middle" true (Interval.contains iv 2.)

let test_interval_shift_hull () =
  let iv = Interval.shift (Interval.make 1. 3.) 2. in
  check_float "shift lo" 3. (Interval.lo iv);
  check_float "shift hi" 5. (Interval.hi iv);
  let h = Interval.hull (Interval.make 0. 1.) (Interval.make 5. 6.) in
  check_float "hull lo" 0. (Interval.lo h);
  check_float "hull hi" 6. (Interval.hi h)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun lo len -> Interval.make lo (lo +. Float.abs len))
      (float_bound_inclusive 100.) (float_bound_inclusive 50.))

let prop_interval_overlap_sym =
  qtest "interval overlap is symmetric"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let prop_interval_hull_contains =
  qtest "hull spans both intervals"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.lo h <= Interval.lo a
      && Interval.lo h <= Interval.lo b
      && Interval.hi h >= Interval.hi a
      && Interval.hi h >= Interval.hi b)

(* --- Interval_set --- *)

let test_iset_empty () =
  Alcotest.(check bool) "empty" true (Interval_set.is_empty Interval_set.empty);
  Alcotest.(check int) "cardinal" 0 (Interval_set.cardinal Interval_set.empty)

let test_iset_add_empty_interval () =
  let s = Interval_set.add (Interval.make 1. 1.) Interval_set.empty in
  Alcotest.(check bool) "ignored" true (Interval_set.is_empty s)

let test_iset_overlaps () =
  let s =
    Interval_set.of_list [ Interval.make 0. 2.; Interval.make 5. 7. ]
  in
  Alcotest.(check bool) "hit" true
    (Interval_set.overlaps (Interval.make 1. 3.) s);
  Alcotest.(check bool) "gap" false
    (Interval_set.overlaps (Interval.make 3. 5.) s);
  Alcotest.(check bool) "late" false
    (Interval_set.overlaps (Interval.make 8. 9.) s)

let test_iset_first_conflict () =
  let s =
    Interval_set.of_list [ Interval.make 5. 7.; Interval.make 0. 2. ]
  in
  match Interval_set.first_conflict (Interval.make 1. 6.) s with
  | Some iv -> check_float "earliest" 0. (Interval.lo iv)
  | None -> Alcotest.fail "expected conflict"

let test_iset_free_from () =
  let s =
    Interval_set.of_list [ Interval.make 2. 4.; Interval.make 5. 6. ]
  in
  check_float "before gap too small" 6.
    (Interval_set.free_from 1. ~duration:2. s);
  check_float "fits in gap" 4. (Interval_set.free_from 3. ~duration:1. s);
  check_float "already free" 0. (Interval_set.free_from 0. ~duration:2. s)

let test_iset_total_duration () =
  let s =
    Interval_set.of_list [ Interval.make 0. 2.; Interval.make 5. 8. ]
  in
  check_float "sum" 5. (Interval_set.total_duration s)

let prop_iset_free_from_is_free =
  qtest "free_from result has no overlap"
    QCheck2.Gen.(
      pair
        (list_size (int_bound 10) interval_gen)
        (float_bound_inclusive 20.))
    (fun (ivs, duration) ->
      let s = Interval_set.of_list ivs in
      let t = Interval_set.free_from 0. ~duration s in
      (duration = 0.)
      || not (Interval_set.overlaps (Interval.make t (t +. duration)) s))

let prop_iset_elements_sorted =
  qtest "elements sorted by start"
    QCheck2.Gen.(list_size (int_bound 20) interval_gen)
    (fun ivs ->
      let sorted = Interval_set.elements (Interval_set.of_list ivs) in
      let rec ascending = function
        | a :: (b :: _ as rest) ->
          Interval.lo a <= Interval.lo b && ascending rest
        | [ _ ] | [] -> true
      in
      ascending sorted)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same sequence" xs ys

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  let xs = List.init 10 (fun _ -> Rng.int a 100) in
  let ys = List.init 10 (fun _ -> Rng.int b 100) in
  Alcotest.(check (list int)) "copy continues identically" xs ys

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo")
    (fun () -> ignore (Rng.int_in rng 3 2));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_rng_shuffle_multiset () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_diverges () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let prop_rng_int_bounds =
  qtest "Rng.int within bounds"
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      0 <= x && x < bound)

let prop_rng_int_in_bounds =
  qtest "Rng.int_in inclusive bounds"
    QCheck2.Gen.(triple int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let x = Rng.int_in rng lo (lo + span) in
      lo <= x && x <= lo + span)

let prop_rng_float_bounds =
  qtest "Rng.float within bounds" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng 3.5 in
      0. <= x && x < 3.5)

(* --- Dsu --- *)

let test_dsu_basics () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "initial sets" 5 (Dsu.count d);
  Dsu.union d 0 1;
  Dsu.union d 2 3;
  Alcotest.(check int) "after unions" 3 (Dsu.count d);
  Alcotest.(check bool) "same 0 1" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same 1 2" false (Dsu.same d 1 2);
  Dsu.union d 1 2;
  Alcotest.(check bool) "transitive" true (Dsu.same d 0 3);
  Alcotest.(check int) "final" 2 (Dsu.count d)

let test_dsu_idempotent_union () =
  let d = Dsu.create 3 in
  Dsu.union d 0 1;
  Dsu.union d 0 1;
  Alcotest.(check int) "no double count" 2 (Dsu.count d)

let prop_dsu_find_canonical =
  qtest "find returns a fixed point"
    QCheck2.Gen.(list_size (int_bound 30) (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let d = Dsu.create 20 in
      List.iter (fun (a, b) -> Dsu.union d a b) unions;
      List.for_all (fun i -> Dsu.find d (Dsu.find d i) = Dsu.find d i)
        (List.init 20 Fun.id))

(* --- Stats --- *)

let test_stats_basics () =
  check_float "sum" 6. (Stats.sum [ 1.; 2.; 3. ]);
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  check_float "stddev constant" 0. (Stats.stddev [ 2.; 2.; 2. ]);
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  check_float "geomean empty" 0. (Stats.geomean [])

let test_stats_improvement () =
  check_float "reduction" 25.
    (Stats.percent_improvement ~ours:75. ~baseline:100.);
  check_float "increase" 50. (Stats.percent_increase ~ours:75. ~baseline:50.);
  check_float "zero baseline" 0.
    (Stats.percent_improvement ~ours:1. ~baseline:0.)

let test_stats_errors () =
  Alcotest.check_raises "min empty"
    (Invalid_argument "Stats.minimum: empty list") (fun () ->
      ignore (Stats.minimum []));
  Alcotest.check_raises "max empty"
    (Invalid_argument "Stats.maximum: empty list") (fun () ->
      ignore (Stats.maximum []))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (Testkit.contains s "name");
  Alcotest.(check bool) "has row" true (Testkit.contains s "alpha");
  Alcotest.(check bool) "has rule" true (Testkit.contains s "+--")

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "align arity"
    (Invalid_argument "Table.set_aligns: arity mismatch") (fun () ->
      Table.set_aligns t [ Table.Left ])

(* --- Json --- *)

let test_json_compact () =
  let v =
    Json.Obj
      [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]
  in
  Alcotest.(check string) "compact" {|{"a":1,"b":[true,null]}|}
    (Json.to_string v)

let test_json_escape () =
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.String "a\"b\\c\nd"))

let test_json_floats () =
  Alcotest.(check string) "integral float" "2.0"
    (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "fraction" "2.5" (Json.to_string (Json.Float 2.5))

let test_json_indent () =
  let v = Json.Obj [ ("x", Json.Int 1) ] in
  let s = Json.to_string ~indent:2 v in
  Alcotest.(check bool) "has newline" true (String.contains s '\n')

(* --- Json parsing --- *)

let test_json_parse_scalars () =
  Alcotest.(check bool) "int" true (Json.of_string "42" = Ok (Json.Int 42));
  Alcotest.(check bool) "negative" true
    (Json.of_string "-7" = Ok (Json.Int (-7)));
  Alcotest.(check bool) "float" true
    (Json.of_string "-3.5" = Ok (Json.Float (-3.5)));
  Alcotest.(check bool) "exponent" true
    (Json.of_string "1e3" = Ok (Json.Float 1000.));
  Alcotest.(check bool) "true" true (Json.of_string "true" = Ok (Json.Bool true));
  Alcotest.(check bool) "null" true (Json.of_string "null" = Ok Json.Null);
  Alcotest.(check bool) "string escapes" true
    (Json.of_string {|"a\nb\"c"|} = Ok (Json.String "a\nb\"c"))

let test_json_parse_containers () =
  Alcotest.(check bool) "array" true
    (Json.of_string "[1, 2, 3]" = Ok (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]));
  Alcotest.(check bool) "object" true
    (Json.of_string {| {"a": 1, "b": [true]} |}
    = Ok (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]));
  Alcotest.(check bool) "empty object" true
    (Json.of_string "{}" = Ok (Json.Obj []));
  Alcotest.(check bool) "empty array" true
    (Json.of_string "[]" = Ok (Json.List []))

let test_json_parse_errors () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty input" true (is_error (Json.of_string ""));
  Alcotest.(check bool) "unterminated object" true
    (is_error (Json.of_string "{"));
  Alcotest.(check bool) "trailing comma" true
    (is_error (Json.of_string "[1,]"));
  Alcotest.(check bool) "missing colon" true
    (is_error (Json.of_string {|{"a" 1}|}));
  Alcotest.(check bool) "trailing garbage" true
    (is_error (Json.of_string "{} x"));
  Alcotest.(check bool) "bare word" true (is_error (Json.of_string "nope"))

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.(check bool) "hit" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "miss" true (Json.member "z" v = None);
  Alcotest.(check bool) "non-object" true
    (Json.member "a" (Json.List []) = None)

(* Float-free generator: float formatting round-trips are checked by the
   scalar cases above; structural round-trip is what this proves. *)
let json_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 map (fun i -> Json.Int i) int;
                 map (fun b -> Json.Bool b) bool;
                 return Json.Null;
                 map (fun s -> Json.String s) (string_size (int_bound 8));
               ]
           in
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun l -> Json.List l)
                   (list_size (int_bound 4) (self (n / 2)));
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair
                         (string_size (int_bound 5)
                            ~gen:(char_range 'a' 'z'))
                         (self (n / 2))));
               ]))

let prop_json_roundtrip =
  qtest "of_string inverts to_string" json_gen (fun v ->
      Json.of_string (Json.to_string v) = Ok v)

let prop_json_roundtrip_pretty =
  qtest "of_string inverts pretty to_string" json_gen (fun v ->
      Json.of_string (Json.to_string ~indent:2 v) = Ok v)

(* Floats whose [float_repr] text parses back to the same double: the
   writer prints non-integer floats with 12 significant digits, so stick
   to binary fractions m/2^k and short decimals d*10^-e that need fewer.
   Integer floats exercise the "%.1f" branch, huge ones the exponent
   form. *)
let roundtrip_float_gen =
  QCheck2.Gen.(
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map2
          (fun m k -> float_of_int m /. float_of_int (1 lsl k))
          (int_range (-9999) 9999) (int_bound 8);
        map2
          (fun d e -> float_of_string (Printf.sprintf "%de-%d" d e))
          (int_range (-999) 999) (int_bound 6);
        map (fun e -> float_of_string (Printf.sprintf "1e%d" e))
          (int_range 15 30);
        oneofl [ 0.; -0.; 1e15; 1e15 -. 1.; 1e-300; 0.5; -0.125 ];
      ])

(* Every byte 0x00-0xff: quotes and backslashes hit the two-char
   escapes, other control bytes the \u form, and high bytes pass through
   raw — all of which the parser must invert. *)
let nasty_string_gen =
  QCheck2.Gen.(string_size (int_bound 12) ~gen:(map Char.chr (int_bound 255)))

let json_full_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 map (fun i -> Json.Int i) int;
                 map (fun f -> Json.Float f) roundtrip_float_gen;
                 map (fun b -> Json.Bool b) bool;
                 return Json.Null;
                 map (fun s -> Json.String s) nasty_string_gen;
               ]
           in
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun l -> Json.List l)
                   (list_size (int_bound 4) (self (n / 2)));
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair nasty_string_gen (self (n / 2))));
               ]))

(* The parser types digit-only text as Int, so integer-valued Floats
   come back as Float only because the writer always prints a decimal
   point; this property proves that invariant holds across both
   renderers. *)
let prop_json_roundtrip_full =
  qtest ~count:500 "full round-trip incl. floats and escapes" json_full_gen
    (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~indent:2 v) = Ok v)

let test_json_numeric_edges () =
  let rt v = Json.of_string (Json.to_string v) = Ok v in
  Alcotest.(check bool) "max_int" true (rt (Json.Int max_int));
  Alcotest.(check bool) "min_int" true (rt (Json.Int min_int));
  Alcotest.(check bool) "1e15 boundary" true (rt (Json.Float 1e15));
  Alcotest.(check bool) "below 1e15" true (rt (Json.Float (1e15 -. 1.)));
  Alcotest.(check bool) "negative zero" true (rt (Json.Float (-0.)));
  Alcotest.(check bool) "huge exponent" true (rt (Json.Float 1e300));
  Alcotest.(check bool) "tiny exponent" true (rt (Json.Float 1e-300))

(* --- Telemetry --- *)

module Telemetry = Mfb_util.Telemetry
module Pool = Mfb_util.Pool
module Lru = Mfb_util.Lru

(* A fake clock (1 s per call) makes timestamps and durations
   reproducible; [Fun.protect] guarantees the global sink never leaks
   into other tests. *)
let with_fake_sink f =
  let t = ref 0. in
  let clock () =
    let v = !t in
    t := v +. 1.;
    v
  in
  let sink = Telemetry.make_sink ~clock () in
  Telemetry.install sink;
  Fun.protect ~finally:Telemetry.uninstall (fun () -> f sink)

let complete_events sink =
  List.filter_map
    (fun (e : Telemetry.event) ->
      match e.ph with
      | Telemetry.Complete dur -> Some (e.name, e.depth, dur)
      | _ -> None)
    (Telemetry.events sink)

let test_telemetry_span_nesting () =
  with_fake_sink (fun sink ->
      let r =
        Telemetry.span ~cat:"t" "outer" (fun () ->
            Telemetry.span ~cat:"t" "inner" (fun () -> 42))
      in
      Alcotest.(check int) "result" 42 r;
      match complete_events sink with
      | [ ("inner", d_in, dur_in); ("outer", d_out, dur_out) ] ->
        Alcotest.(check int) "inner depth" 1 d_in;
        Alcotest.(check int) "outer depth" 0 d_out;
        Alcotest.(check bool) "outer encloses inner" true (dur_out > dur_in)
      | evs ->
        Alcotest.failf "expected inner-then-outer, got %d events"
          (List.length evs))

let test_telemetry_span_on_raise () =
  with_fake_sink (fun sink ->
      (try
         Telemetry.span "doomed" (fun () -> raise Exit)
       with Exit -> ());
      match complete_events sink with
      | [ ("doomed", 0, _) ] -> ()
      | _ -> Alcotest.fail "span not closed on exception")

let test_telemetry_disabled_noop () =
  Alcotest.(check bool) "inactive" false (Telemetry.active ());
  Alcotest.(check int) "span passes through" 7
    (Telemetry.span "s" (fun () -> 7));
  Telemetry.incr "c";
  Telemetry.observe "h" 1.;
  Telemetry.gauge "g" 2.;
  Telemetry.sample "s" 3.;
  Telemetry.instant "i";
  let ctx = Telemetry.task_context () in
  Alcotest.(check bool) "context inert" false (Telemetry.is_live ctx);
  Alcotest.(check int) "in_task identity" 9
    (Telemetry.in_task ctx ~label:"t" 0 (fun () -> 9));
  let v, ms = Telemetry.with_scope "scope" (fun () -> 11) in
  Alcotest.(check int) "with_scope passes through" 11 v;
  Alcotest.(check int) "no metrics" 0 (List.length ms)

let test_telemetry_span_hook () =
  with_fake_sink (fun _sink ->
      let log = ref [] in
      Telemetry.set_span_hook
        (Some
           (fun dir ~depth:_ name ->
             log := (dir = `Open, name) :: !log));
      Fun.protect
        ~finally:(fun () -> Telemetry.set_span_hook None)
        (fun () ->
          Telemetry.span "a" (fun () -> Telemetry.span "b" (fun () -> ())));
      Alcotest.(check bool) "open/close order" true
        (List.rev !log
        = [ (true, "a"); (true, "b"); (false, "b"); (false, "a") ]))

let test_telemetry_aggregates () =
  with_fake_sink (fun _sink ->
      let (), ms =
        Telemetry.with_scope "s" (fun () ->
            Telemetry.incr ~cat:"c" "x";
            Telemetry.incr ~cat:"c" ~by:4 "x";
            Telemetry.gauge ~cat:"c" "g" 1.;
            Telemetry.gauge ~cat:"c" "g" 2.5;
            Telemetry.observe ~cat:"c" "h" 3.;
            Telemetry.observe ~cat:"c" "h" 1.)
      in
      match ms with
      | [ { Telemetry.mcat = "c"; mname = "g"; mdata = Telemetry.Gauge g };
          { mcat = "c"; mname = "h"; mdata = Telemetry.Histogram s };
          { mcat = "c"; mname = "x"; mdata = Telemetry.Counter n } ] ->
        check_float "gauge last wins" 2.5 g;
        Alcotest.(check int) "hist count" 2 s.count;
        check_float "hist sum" 4. s.sum;
        check_float "hist min" 1. s.min;
        check_float "hist max" 3. s.max;
        Alcotest.(check int) "counter sum" 5 n
      | _ -> Alcotest.failf "unexpected metrics (%d)" (List.length ms))

(* The load-bearing property: aggregates merged from the collector tree
   are identical whatever the worker count, float summation included. *)
let test_telemetry_merge_jobs_invariant () =
  let run jobs =
    with_fake_sink (fun _sink ->
        let _, ms =
          Telemetry.with_scope "s" (fun () ->
              ignore
                (Pool.map ~label:"t" ~jobs
                   (fun i ->
                     Telemetry.incr ~cat:"m" "n";
                     Telemetry.observe ~cat:"m" "v" (float_of_int i *. 0.1);
                     Telemetry.gauge ~cat:"m" "last" (float_of_int i);
                     i * i)
                   (List.init 17 Fun.id)))
        in
        ms)
  in
  let m1 = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d equals jobs=1" jobs)
        true
        (run jobs = m1))
    [ 2; 3; 8 ];
  (* And the gauge winner is the program-order last task, not a race. *)
  match
    List.find_opt (fun (m : Telemetry.metric) -> m.mname = "last") m1
  with
  | Some { mdata = Telemetry.Gauge g; _ } -> check_float "last task" 16. g
  | _ -> Alcotest.fail "gauge missing"

let test_telemetry_chrome_export () =
  with_fake_sink (fun sink ->
      Telemetry.span ~cat:"t" "top" (fun () ->
          Telemetry.sample ~cat:"t" "load" 0.5;
          Telemetry.instant ~cat:"t" "tick");
      let doc = Telemetry.to_chrome_json ~process_name:"test" sink in
      match Json.of_string (Json.to_string doc) with
      | Error e -> Alcotest.failf "export does not re-parse: %s" e
      | Ok parsed ->
        (match Json.member "traceEvents" parsed with
         | Some (Json.List events) ->
           Alcotest.(check bool) "has events" true (List.length events > 3);
           List.iter
             (fun ev ->
               match Json.member "ph" ev, Json.member "name" ev with
               | Some (Json.String _), Some (Json.String _) -> ()
               | _ -> Alcotest.fail "event lacks ph/name")
             events;
           let has ph =
             List.exists
               (fun ev -> Json.member "ph" ev = Some (Json.String ph))
               events
           in
           Alcotest.(check bool) "complete span" true (has "X");
           Alcotest.(check bool) "counter sample" true (has "C");
           Alcotest.(check bool) "instant" true (has "i");
           Alcotest.(check bool) "metadata" true (has "M")
         | _ -> Alcotest.fail "no traceEvents array"))

let test_telemetry_jsonl () =
  with_fake_sink (fun sink ->
      Telemetry.span "a" (fun () -> Telemetry.instant "b");
      let lines =
        String.split_on_char '\n' (String.trim (Telemetry.to_jsonl sink))
      in
      Alcotest.(check int) "one record per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Ok (Json.Obj _) -> ()
          | _ -> Alcotest.failf "bad JSONL line: %s" line)
        lines)

(* --- Lru --- *)

let test_lru_basics () =
  let c = Lru.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Lru.capacity c);
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check int) "two entries" 2 (Lru.length c);
  Alcotest.(check bool) "find hit" true (Lru.find c "a" = Some 1);
  Alcotest.(check bool) "find miss" true (Lru.find c "z" = None);
  Alcotest.(check bool) "mem" true (Lru.mem c "b");
  Lru.remove c "b";
  Alcotest.(check bool) "removed" false (Lru.mem c "b");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity < 1")
    (fun () -> ignore (Lru.create ~capacity:0 ()))

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* LRU "a" evicted *)
  Alcotest.(check (list string)) "b,c resident" [ "c"; "b" ]
    (Lru.keys_mru_first c);
  ignore (Lru.find c "b");
  (* "b" now MRU, so adding evicts "c" *)
  Lru.add c "d" 4;
  Alcotest.(check (list string)) "find refreshes recency" [ "d"; "b" ]
    (Lru.keys_mru_first c);
  (* replacing a resident key must not evict *)
  Lru.add c "b" 20;
  Alcotest.(check int) "replace keeps size" 2 (Lru.length c);
  Alcotest.(check bool) "replace updates value" true (Lru.find c "b" = Some 20);
  let s = Lru.stats c in
  Alcotest.(check int) "evictions" 2 s.Lru.evictions

let test_lru_stats_and_telemetry () =
  with_fake_sink (fun sink ->
      let c = Lru.create ~name:"t" ~capacity:1 () in
      ignore (Lru.find c "a");
      Lru.add c "a" 1;
      ignore (Lru.find c "a");
      Lru.add c "b" 2;
      let s = Lru.stats c in
      Alcotest.(check int) "hits" 1 s.Lru.hits;
      Alcotest.(check int) "misses" 1 s.Lru.misses;
      Alcotest.(check int) "evictions" 1 s.Lru.evictions;
      let counters =
        List.filter_map
          (fun (m : Telemetry.metric) ->
            match m.mdata with
            | Telemetry.Counter n when m.mcat = "cache" -> Some (m.mname, n)
            | _ -> None)
          (Telemetry.metrics sink)
      in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " counted") true
            (List.assoc_opt name counters = Some 1))
        [ "t.hit"; "t.miss"; "t.eviction" ])

(* Model check: an LRU of capacity k holds exactly the last k distinct
   keys of the access sequence (finds of resident keys count as
   accesses), in recency order. *)
let prop_lru_matches_model =
  qtest "matches reference model"
    QCheck2.Gen.(
      pair (int_range 1 4) (small_list (pair (int_bound 8) (int_bound 100))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap () in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          Lru.add c k v;
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > cap then
            model :=
              List.filteri (fun i _ -> i < cap) !model)
        ops;
      Lru.length c = List.length !model
      && Lru.keys_mru_first c = List.map fst !model
      && List.for_all (fun (k, v) -> Lru.find c k = Some v) !model)

(* --- Histogram --- *)

module Histogram = Mfb_util.Histogram

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let test_histogram_basics () =
  let h = hist_of [ 1.0; 2.0; 4.0; 0.0; -3.0 ] in
  Alcotest.(check int) "count" 5 (Histogram.count h);
  check_float "sum" 4.0 (Histogram.sum h);
  check_float "min" (-3.0) (Histogram.min_value h);
  check_float "max" 4.0 (Histogram.max_value h);
  let empty = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count empty);
  check_float "empty quantile" 0.0 (Histogram.quantile empty 0.5);
  Alcotest.(check bool) "nan ignored" true
    (let h = Histogram.create () in
     Histogram.add h Float.nan;
     Histogram.count h = 0)

let test_histogram_json_roundtrip () =
  let h = hist_of [ 0.5; 1.0; 1.0; 7.25; 1000.0; 0.0 ] in
  match Histogram.of_json (Histogram.to_json h) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok h' ->
    Alcotest.(check int) "count" (Histogram.count h) (Histogram.count h');
    check_float "sum" (Histogram.sum h) (Histogram.sum h');
    check_float "min" (Histogram.min_value h) (Histogram.min_value h');
    check_float "max" (Histogram.max_value h) (Histogram.max_value h');
    Alcotest.(check bool) "buckets" true
      (Histogram.buckets h = Histogram.buckets h')

let test_histogram_prometheus_shape () =
  let h = hist_of [ 1.0; 2.0; 2.0 ] in
  let buf = Buffer.create 256 in
  Histogram.prometheus ~help:"test series" ~name:"t_lat" buf h;
  let text = Buffer.contents buf in
  let contains sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length text
      && (String.sub text i n = sub || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true
        (contains sub))
    [ "# HELP t_lat test series"; "# TYPE t_lat histogram";
      "t_lat_bucket{le=\"+Inf\"} 3"; "t_lat_count 3"; "t_lat_sum 5" ]

(* Positive-skewed observation generator: mixes magnitudes across many
   octaves, plus zeros and sub-1 values, so the clamped index range and
   the zero bucket both get exercised. *)
let obs_gen =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (oneof
         [ float_range 0.0 3.0;
           float_range 0.0 1e6;
           return 0.0;
           float_range 1e-9 1e-3 ]))

let prop_histogram_merge_associative =
  qtest ~count:100 "merge is associative and order-blind"
    QCheck2.Gen.(triple obs_gen obs_gen obs_gen)
    (fun (a, b, c) ->
      let open Histogram in
      let ha () = hist_of a and hb () = hist_of b and hc () = hist_of c in
      let left = merge (merge (ha ()) (hb ())) (hc ())
      and right = merge (ha ()) (merge (hb ()) (hc ()))
      and flat = hist_of (a @ b @ c) in
      let close x y = Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x) in
      let same x y =
        count x = count y
        && buckets x = buckets y
        && close (sum x) (sum y)
        && min_value x = min_value y
        && max_value x = max_value y
      in
      same left right && same left flat)

let prop_histogram_quantile_bound =
  qtest ~count:100 "quantile within one bucket of exact"
    QCheck2.Gen.(pair obs_gen (float_range 0.01 1.0))
    (fun (values, q) ->
      values = []
      ||
      let h = hist_of values in
      let sorted = List.sort compare values in
      let rank =
        max 1 (int_of_float (ceil (q *. float_of_int (List.length values))))
      in
      let exact = List.nth sorted (rank - 1) in
      let u = Histogram.quantile h q in
      if exact <= 0.0 then u = 0.0
      else
        let eps = 1e-9 *. exact in
        u +. eps >= exact
        && u <= (exact *. Histogram.gamma *. Histogram.gamma) +. eps)

(* --- Telemetry span trees and folded stacks --- *)

let test_telemetry_node_roundtrip () =
  with_fake_sink (fun sink ->
      Telemetry.span ~cat:"t" ~args:[ ("k", Telemetry.Int 3) ] "outer"
        (fun () ->
          Telemetry.span ~cat:"t" "inner" (fun () -> ()));
      match Telemetry.spans sink with
      | [ root ] ->
        Alcotest.(check string) "root name" "outer" root.Telemetry.n_name;
        (match root.Telemetry.n_children with
         | [ child ] ->
           Alcotest.(check string) "child name" "inner"
             child.Telemetry.n_name
         | l -> Alcotest.failf "expected 1 child, got %d" (List.length l));
        (match Telemetry.node_of_json (Telemetry.node_to_json root) with
         | Ok root' ->
           Alcotest.(check bool) "json round trip" true (root = root')
         | Error e -> Alcotest.failf "node_of_json: %s" e)
      | forest ->
        Alcotest.failf "expected 1 root, got %d" (List.length forest))

let test_telemetry_emit_node_regrafts () =
  (* A node shipped across a process boundary re-emits onto a live sink
     and comes back out of [spans] structurally unchanged. *)
  with_fake_sink (fun sink1 ->
      Telemetry.span "a" (fun () -> Telemetry.span "b" (fun () -> ()));
      match Telemetry.spans sink1 with
      | [ root ] ->
        Telemetry.uninstall ();
        with_fake_sink (fun sink2 ->
            Telemetry.emit_node root;
            match Telemetry.spans sink2 with
            | [ root' ] ->
              Alcotest.(check string) "name survives" root.Telemetry.n_name
                root'.Telemetry.n_name;
              Alcotest.(check int) "children survive"
                (List.length root.Telemetry.n_children)
                (List.length root'.Telemetry.n_children)
            | f -> Alcotest.failf "regraft: %d roots" (List.length f))
      | f -> Alcotest.failf "expected 1 root, got %d" (List.length f))

let test_telemetry_to_folded () =
  with_fake_sink (fun sink ->
      Telemetry.span "outer" (fun () ->
          Telemetry.span "inner" (fun () -> ()));
      let folded = Telemetry.to_folded sink in
      let lines =
        List.filter (fun l -> l <> "")
          (String.split_on_char '\n' folded)
      in
      Alcotest.(check int) "one line per stack" 2 (List.length lines);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "no value separator: %s" line
          | Some i ->
            let v =
              int_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            Alcotest.(check bool) "positive integer value" true
              (match v with Some n -> n >= 1 | None -> false))
        lines;
      (* stacks are rooted at the collector's track name *)
      Alcotest.(check bool) "inner nested under outer" true
        (List.exists
           (fun l ->
             String.length l > 16 && String.sub l 0 16 = "main;outer;inner")
           lines))

let suites =
  [
    ( "util.pqueue",
      [
        Alcotest.test_case "empty" `Quick test_pqueue_empty;
        Alcotest.test_case "order" `Quick test_pqueue_order;
        Alcotest.test_case "max-queue" `Quick test_pqueue_max_via_cmp;
        Alcotest.test_case "peek" `Quick test_pqueue_peek_stable;
        Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
        Alcotest.test_case "to_list" `Quick test_pqueue_to_list;
        prop_pqueue_sorts;
        prop_pqueue_length;
      ] );
    ( "util.interval",
      [
        Alcotest.test_case "make invalid" `Quick test_interval_make_invalid;
        Alcotest.test_case "basics" `Quick test_interval_basics;
        Alcotest.test_case "overlap" `Quick test_interval_overlap;
        Alcotest.test_case "contains" `Quick test_interval_contains;
        Alcotest.test_case "shift/hull" `Quick test_interval_shift_hull;
        prop_interval_overlap_sym;
        prop_interval_hull_contains;
      ] );
    ( "util.interval_set",
      [
        Alcotest.test_case "empty" `Quick test_iset_empty;
        Alcotest.test_case "add empty interval" `Quick
          test_iset_add_empty_interval;
        Alcotest.test_case "overlaps" `Quick test_iset_overlaps;
        Alcotest.test_case "first_conflict" `Quick test_iset_first_conflict;
        Alcotest.test_case "free_from" `Quick test_iset_free_from;
        Alcotest.test_case "total_duration" `Quick test_iset_total_duration;
        prop_iset_free_from_is_free;
        prop_iset_elements_sorted;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "invalid args" `Quick test_rng_invalid;
        Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
        Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
        prop_rng_int_bounds;
        prop_rng_int_in_bounds;
        prop_rng_float_bounds;
      ] );
    ( "util.dsu",
      [
        Alcotest.test_case "basics" `Quick test_dsu_basics;
        Alcotest.test_case "idempotent union" `Quick test_dsu_idempotent_union;
        prop_dsu_find_canonical;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basics" `Quick test_stats_basics;
        Alcotest.test_case "improvement" `Quick test_stats_improvement;
        Alcotest.test_case "errors" `Quick test_stats_errors;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity" `Quick test_table_arity;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "compact" `Quick test_json_compact;
        Alcotest.test_case "escape" `Quick test_json_escape;
        Alcotest.test_case "floats" `Quick test_json_floats;
        Alcotest.test_case "indent" `Quick test_json_indent;
        Alcotest.test_case "parse scalars" `Quick test_json_parse_scalars;
        Alcotest.test_case "parse containers" `Quick
          test_json_parse_containers;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "member" `Quick test_json_member;
        Alcotest.test_case "numeric edges" `Quick test_json_numeric_edges;
        prop_json_roundtrip;
        prop_json_roundtrip_pretty;
        prop_json_roundtrip_full;
      ] );
    ( "util.lru",
      [
        Alcotest.test_case "basics" `Quick test_lru_basics;
        Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "stats and telemetry" `Quick
          test_lru_stats_and_telemetry;
        prop_lru_matches_model;
      ] );
    ( "util.telemetry",
      [
        Alcotest.test_case "span nesting" `Quick test_telemetry_span_nesting;
        Alcotest.test_case "span closes on raise" `Quick
          test_telemetry_span_on_raise;
        Alcotest.test_case "disabled is a no-op" `Quick
          test_telemetry_disabled_noop;
        Alcotest.test_case "span hook" `Quick test_telemetry_span_hook;
        Alcotest.test_case "aggregates" `Quick test_telemetry_aggregates;
        Alcotest.test_case "merge is jobs-invariant" `Quick
          test_telemetry_merge_jobs_invariant;
        Alcotest.test_case "chrome export" `Quick test_telemetry_chrome_export;
        Alcotest.test_case "jsonl export" `Quick test_telemetry_jsonl;
        Alcotest.test_case "span-tree node round trip" `Quick
          test_telemetry_node_roundtrip;
        Alcotest.test_case "emit_node regrafts a shipped tree" `Quick
          test_telemetry_emit_node_regrafts;
        Alcotest.test_case "folded flamegraph export" `Quick
          test_telemetry_to_folded;
      ] );
    ( "util.histogram",
      [
        Alcotest.test_case "basics" `Quick test_histogram_basics;
        Alcotest.test_case "json round trip" `Quick
          test_histogram_json_roundtrip;
        Alcotest.test_case "prometheus shape" `Quick
          test_histogram_prometheus_shape;
        prop_histogram_merge_associative;
        prop_histogram_quantile_bound;
      ] );
  ]
