Golden-corpus regression: the hot-path optimizations (incremental SA
energy, BFS heuristic field, array-backed Rgrid occupation index) must
not change a single byte of `Result.to_json` on any bundled benchmark.
The *.golden.json files were frozen from the pre-optimization build
(timing fields stripped — they are the only wall-clock-dependent
output) and every run, at --jobs 1 and --jobs 2, is compared with cmp.

  $ check() {
  >   for j in 1 2; do
  >     ../../bin/dcsa_synth.exe run -b "$1" --jobs $j --json 2>/dev/null \
  >       | grep -vE '(cpu|wall)_time_s' > "$1_jobs$j.json"
  >     cmp "$1_jobs$j.golden.json" "$1_jobs$j.json" || echo "GOLDEN MISMATCH: $1 jobs=$j"
  >   done
  > }

  $ check PCR
  $ check IVD
  $ check CPA
  $ check Synthetic1
  $ check Synthetic2
  $ check Synthetic3
  $ check Synthetic4
