The repair subcommand synthesises a benchmark, then re-synthesises it
incrementally around injected defects: rip up only the routes and
bindings a defect touches, and climb an escalation ladder (reroute ->
reroute-with-delay -> re-bind -> full resynthesis) until the assay
survives.  A single dead channel cell on a used route is absorbed at
the first rung.

  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 5,6
  defects:   cell(5,6)
  rung:      reroute
  ripped up 1  rerouted 1 (0 delayed)  rebound 0  fallbacks 0  failed 0
  makespan:  22.20 -> 22.20 s (+0.00)
  survived:  yes

A defect under a component footprint used to raise Invalid_argument
deep in the router; it is now lifted to a structured component fault
and handled on the re-bind rung.  PCR has no spare mixer, so the
repair honestly reports the assay as lost rather than crashing:

  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 3,4
  defects:   component(0)
  rung:      rebind
  ripped up 0  rerouted 0 (0 delayed)  rebound 0  fallbacks 0  failed 3
  makespan:  22.20 -> 22.20 s (+0.00)
  survived:  no

Seeded defect plans are deterministic JSON documents: a model draw
saved with --save-plan replays byte-identically through --defect-plan.

  $ ../../bin/dcsa_synth.exe repair -b PCR --defect-model single --defect-seed 7 --save-plan plan.json > seeded.out
  wrote plan.json
  $ cat seeded.out
  defects:   cell(9,1)
  rung:      none (nothing affected)
  ripped up 0  rerouted 0 (0 delayed)  rebound 0  fallbacks 0  failed 0
  makespan:  22.20 -> 22.20 s (+0.00)
  survived:  yes
  $ cat plan.json
  {
   "defects": [
    {
     "tick": 0,
     "kind": "cell",
     "x": 9,
     "y": 1
    }
   ]
  }
  $ ../../bin/dcsa_synth.exe repair -b PCR --defect-plan plan.json > replayed.out
  $ cmp seeded.out replayed.out && echo plan-replay-identical
  plan-replay-identical

The repair report is a pure function of (job, defects): --json output
is bit-for-bit identical for every --jobs value.

  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 5,6 --json > r1.json
  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 5,6 --json --jobs 2 > r2.json
  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 5,6 --json --jobs 4 > r4.json
  $ cmp r1.json r2.json && cmp r1.json r4.json && echo repair-jobs-invariant
  repair-jobs-invariant
  $ cat r1.json
  {
    "targets": [
      {
        "kind": "cell",
        "x": 5,
        "y": 6
      }
    ],
    "ripped_up": 1,
    "rerouted": 1,
    "rerouted_delayed": 0,
    "rebound": 0,
    "fallbacks": 0,
    "failed": 0,
    "rung": "reroute",
    "survived": true,
    "makespan_before": 22.2,
    "makespan_after": 22.2
  }

Bad defect specifications are refused up front, before any synthesis
state is touched:

  $ ../../bin/dcsa_synth.exe repair -b PCR --defect 999,999
  dcsa-synth: defect cell (999,999) outside the 13x13 chip
  [124]
  $ ../../bin/dcsa_synth.exe repair -b PCR --defect-plan plan.json --defect-model single
  dcsa-synth: use either --defect-plan or --defect-model, not both
  [124]
  $ ../../bin/dcsa_synth.exe repair -b PCR
  dcsa-synth: empty defect set; give --defect X,Y, --dead-component ID, --defect-plan FILE or --defect-model MODEL
  [124]

The serving tier exposes the same ladder as a repair op against an
already-computed result.  The first repair is answered warm from the
retained full result; the component fault reports survived:false
through the same wire shape; an unknown target is a structured error.

  $ cat > rscript.txt <<'EOF'
  > {"op":"submit","id":"r1","benchmark":"PCR"}
  > {"op":"result","id":"r1"}
  > {"op":"repair","id":"p1","target":"r1","defects":[{"kind":"cell","x":5,"y":6}]}
  > {"op":"repair","id":"p2","target":"r1","defects":[{"kind":"cell","x":3,"y":4}]}
  > {"op":"repair","id":"p3","target":"ghost","defects":[{"kind":"cell","x":1,"y":1}]}
  > EOF
  $ ../../bin/dcsa_synth.exe serve < rscript.txt > stdio.out
  $ grep '"op":"repair"' stdio.out
  {"ok":true,"op":"repair","id":"p1","target":"r1","key":"5a1cf9d38af9fd6b","warm":true,"report":{"targets":[{"kind":"cell","x":5,"y":6}],"ripped_up":1,"rerouted":1,"rerouted_delayed":0,"rebound":0,"fallbacks":0,"failed":0,"rung":"reroute","survived":true,"makespan_before":22.2,"makespan_after":22.2}}
  {"ok":true,"op":"repair","id":"p2","target":"r1","key":"5a1cf9d38af9fd6b","warm":true,"report":{"targets":[{"kind":"component","id":0}],"ripped_up":0,"rerouted":0,"rerouted_delayed":0,"rebound":0,"fallbacks":0,"failed":3,"rung":"rebind","survived":false,"makespan_before":22.2,"makespan_after":22.2}}
  $ grep '"id":"p3"' stdio.out
  {"ok":false,"op":"error","id":"p3","message":"unknown target id \"ghost\""}

Repairs carry their own stats section and latency histogram, present
only once a repair has run (repair-free scripts keep their old stats
bytes):

  $ printf '{"op":"stats"}\n' | ../../bin/dcsa_synth.exe serve | grep -c '"repair"'
  0
  [1]
  $ { cat rscript.txt; printf '{"op":"stats"}\n'; } | ../../bin/dcsa_synth.exe serve | grep -o '"repair":{"total":2,"warm":2'
  "repair":{"total":2,"warm":2

With --repair-cache 0 no full result is retained, so every repair
re-synthesises cold; only the warm flag changes, the report bytes do
not.

  $ ../../bin/dcsa_synth.exe serve --repair-cache 0 < rscript.txt > cold.out
  $ grep -c '"warm":false' cold.out
  2
  $ sed 's/"warm":[a-z]*/"warm":X/' stdio.out > stdio.norm
  $ sed 's/"warm":[a-z]*/"warm":X/' cold.out > cold.norm
  $ cmp stdio.norm cold.norm && echo warm-cold-identical
  warm-cold-identical

The access log attributes repairs as their own outcome on the target's
cache key:

  $ ../../bin/dcsa_synth.exe serve --access-log acc.jsonl < rscript.txt > /dev/null
  $ grep '"outcome":"repair"' acc.jsonl
  {"rid":"r000002","id":"p1","key":"5a1cf9d3","backend":"heuristic","outcome":"repair","queue_ticks":0,"compute_ticks":1,"total_ticks":1}
  {"rid":"r000003","id":"p2","key":"5a1cf9d3","backend":"heuristic","outcome":"repair","queue_ticks":0,"compute_ticks":1,"total_ticks":1}

And the TCP transport answers the identical script with byte-identical
responses — repair ops included:

  $ ../../bin/dcsa_synth.exe serve --tcp 0 --port-file port 2>tcp_serve.err &
  $ SERVE_PID=$!
  $ ../../bin/dcsa_synth.exe client --port-file port < rscript.txt > tcp.out
  $ ../../bin/dcsa_synth.exe client --port-file port <<'EOF'
  > {"op":"shutdown"}
  > EOF
  {"ok":true,"op":"shutdown","stats":{"tick":1,"submitted":1,"computed":1,"cache":{"capacity":128,"entries":1,"hits":0,"misses":1,"evictions":0},"queue":{"depth":64,"queued":0},"shed":{"deadline":0,"displaced":0},"rejected":0,"latency":{"count":1,"sum":1.0,"min":1.0,"max":1.0,"p50":1.189207115,"p95":1.189207115,"p99":1.189207115},"queue_wait":{"count":1,"sum":0.0,"min":0.0,"max":0.0,"p50":0.0,"p95":0.0,"p99":0.0},"repair":{"total":2,"warm":2,"latency":{"count":2,"sum":2.0,"min":1.0,"max":1.0,"p50":1.189207115,"p95":1.189207115,"p99":1.189207115}},"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000},"totals":{"cache":{"hits":0,"misses":1,"evictions":0},"queue":{"submitted":1,"computed":1,"shed":0,"rejected":0},"cluster":{"dispatched":0,"retries":0,"degraded":0,"respawns":0}}}}
  $ wait $SERVE_PID
  $ cmp stdio.out tcp.out && echo transport-invariant
  transport-invariant
