(* Tests for the routing stage: grid, A*, conflict-aware router (paper
   Alg. 2 lines 9-18) and the construction-by-correction baseline. *)

module Chip = Mfb_place.Chip
module Rgrid = Mfb_route.Rgrid
module Astar = Mfb_route.Astar
module Routed = Mfb_route.Routed
module Router = Mfb_route.Router
module Baseline_router = Mfb_route.Baseline_router
module Interval = Mfb_util.Interval
module Fluid = Mfb_bioassay.Fluid
module Allocation = Mfb_component.Allocation
module Types = Mfb_schedule.Types

let tc = 2.0
let we = 10.0

let easy = Fluid.make ~name:"easy" ~diffusion:1e-5
let hard = Fluid.make ~name:"hard" ~diffusion:1e-8

let chip_of vector =
  Chip.scanline (Array.of_list (Allocation.components (Allocation.of_vector vector)))

let grid_of vector = Rgrid.create ~we (chip_of vector)

(* A full synthesis front-end for routing tests. *)
let routed_instance ?(weight_update = true) index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  let nets =
    Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4 (Mfb_place.Net.of_schedule sched)
  in
  let placed =
    Mfb_place.Annealer.place
      ~params:{ Mfb_place.Annealer.default_params with t0 = 100.; i_max = 40 }
      ~rng:(Mfb_util.Rng.create 42) ~nets sched.components
  in
  (sched, placed.chip, Router.route ~weight_update ~we ~tc placed.chip sched)

(* --- Rgrid --- *)

let test_grid_blocked_matches_chip () =
  let chip = chip_of (2, 1, 0, 0) in
  let grid = Rgrid.create ~we chip in
  List.iter
    (fun xy ->
      Alcotest.(check bool) "footprint blocked" true (Rgrid.blocked grid xy))
    (Chip.blocked_cells chip);
  Alcotest.(check bool) "free cell" false
    (Rgrid.blocked grid (chip.width - 1, chip.height - 1))

let test_grid_ports () =
  let chip = chip_of (3, 2, 1, 1) in
  let grid = Rgrid.create ~we chip in
  Array.iteri
    (fun i _ ->
      let ports = Rgrid.ports grid i in
      Alcotest.(check bool) "has ports" true (ports <> []);
      Alcotest.(check bool) "at most four" true (List.length ports <= 4);
      List.iter
        (fun xy ->
          Alcotest.(check bool) "port unblocked" false (Rgrid.blocked grid xy);
          Alcotest.(check bool) "port in bounds" true (Rgrid.in_bounds grid xy))
        ports;
      Alcotest.(check bool) "canonical port is first" true
        (Rgrid.port grid i = List.hd ports))
    chip.components

let test_grid_weights () =
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  Alcotest.(check (float 1e-9)) "initial w_e" we (Rgrid.weight grid cell);
  Rgrid.set_weight grid cell 3.5;
  Alcotest.(check (float 1e-9)) "updated" 3.5 (Rgrid.weight grid cell)

let test_grid_we_validation () =
  let chip = chip_of (1, 0, 0, 0) in
  Alcotest.check_raises "negative we"
    (Invalid_argument "Rgrid.create: negative w_e") (fun () ->
      ignore (Rgrid.create ~we:(-1.) chip))

let test_conflict_free_overlap () =
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  Rgrid.add_occupation grid cell
    { Rgrid.interval = Interval.make 0. 5.; fluid = easy };
  Alcotest.(check bool) "overlap rejected" false
    (Rgrid.conflict_free grid cell (Interval.make 4. 6.) easy);
  Alcotest.(check bool) "same fluid immediately after" true
    (Rgrid.conflict_free grid cell (Interval.make 5. 6.) easy);
  (* A different fluid needs the residue washed first (0.2 s for easy). *)
  Alcotest.(check bool) "different fluid too soon" false
    (Rgrid.conflict_free grid cell (Interval.make 5.05 6.) hard);
  Alcotest.(check bool) "different fluid after wash" true
    (Rgrid.conflict_free grid cell (Interval.make 5.3 6.) hard)

let test_conflict_free_blocked () =
  let chip = chip_of (1, 0, 0, 0) in
  let grid = Rgrid.create ~we chip in
  let blocked_cell = List.hd (Chip.blocked_cells chip) in
  Alcotest.(check bool) "blocked cell unusable" false
    (Rgrid.conflict_free grid blocked_cell (Interval.make 0. 1.) easy)

let test_required_delay () =
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  Rgrid.add_occupation grid cell
    { Rgrid.interval = Interval.make 0. 5.; fluid = hard };
  let iv = Interval.make 1. 3. in
  let d = Rgrid.required_delay grid cell iv easy in
  Alcotest.(check bool) "delay positive" true (d > 0.);
  Alcotest.(check bool) "shifted window is free" true
    (Rgrid.conflict_free grid cell (Interval.shift iv d) easy)

let test_wash_debt () =
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  Rgrid.add_occupation grid cell
    { Rgrid.interval = Interval.make 0. 5.; fluid = hard };
  Alcotest.(check (float 1e-6)) "debt = hard wash"
    (Fluid.wash_time hard)
    (Rgrid.wash_debt grid cell ~at:20. easy);
  Alcotest.(check (float 1e-9)) "same fluid no debt" 0.
    (Rgrid.wash_debt grid cell ~at:20. hard);
  Alcotest.(check (float 1e-9)) "clean cell no debt" 0.
    (Rgrid.wash_debt grid (1, 0) ~at:20. easy)

let test_neighbours () =
  let grid = grid_of (1, 0, 0, 0) in
  Alcotest.(check int) "corner has 2" 2
    (List.length (Rgrid.neighbours grid (0, 0)));
  Alcotest.(check int) "interior has 4" 4
    (List.length (Rgrid.neighbours grid (5, 5)))

let test_required_delay_fuel () =
  (* Adversarial cascade: occupations spaced so that every settle jump
     lands inside the next one, forcing one iteration per occupation.
     The fuel budget (n + 2) must still settle the query — each
     occupation can trigger at most one jump, because the shift moves
     the window past its wash horizon — and the result must match the
     reference fold and actually be conflict-free. *)
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  let n = 10 in
  for k = 0 to n - 1 do
    let lo = float_of_int k *. 1.25 in
    Rgrid.add_occupation grid cell
      { Rgrid.interval = Interval.make lo (lo +. 1.);
        fluid = (if k mod 2 = 0 then easy else hard) }
  done;
  let iv = Interval.make 0. 0.5 in
  let d = Rgrid.required_delay grid cell iv easy in
  Alcotest.(check bool) "finite" true (Float.is_finite d);
  Alcotest.(check bool) "cascaded past the chain" true
    (d >= float_of_int (n - 1) *. 1.25);
  Alcotest.(check (float 0.)) "matches reference" d
    (Rgrid.required_delay_ref grid cell iv easy);
  Alcotest.(check bool) "settled window is free" true
    (Rgrid.conflict_free grid cell (Interval.shift iv d) easy)

let test_wash_debt_boundaries () =
  let grid = grid_of (1, 0, 0, 0) in
  let cell = (0, 0) in
  Rgrid.add_occupation grid cell
    { Rgrid.interval = Interval.make 0. 5.; fluid = hard };
  (* Exactly at the occupation end: the 1e-9 tolerance admits it. *)
  Alcotest.(check (float 0.)) "at = hi counts as prior"
    (Fluid.wash_time hard)
    (Rgrid.wash_debt grid cell ~at:5. easy);
  (* Just before the end: not yet a prior. *)
  Alcotest.(check (float 0.)) "at < hi is not a prior" 0.
    (Rgrid.wash_debt grid cell ~at:4.999999 easy);
  (* Identical fluid never owes a wash, boundary or not. *)
  Alcotest.(check (float 0.)) "identical fluid at boundary" 0.
    (Rgrid.wash_debt grid cell ~at:5. hard);
  (* Tie on the interval end: the canonical list order (interval
     ascending, later insertions first among equals) picks the winner;
     the indexed and reference implementations must agree. *)
  Rgrid.add_occupation grid cell
    { Rgrid.interval = Interval.make 2. 5.; fluid = easy };
  List.iter
    (fun f ->
      Alcotest.(check (float 0.)) "tie matches reference"
        (Rgrid.wash_debt_ref grid cell ~at:6. f)
        (Rgrid.wash_debt grid cell ~at:6. f))
    [ easy; hard ]

(* --- A* --- *)

let free_grid () =
  (* A grid with a single tiny component in the corner leaves plenty of
     open space for path tests. *)
  grid_of (1, 0, 0, 0)

let test_astar_straight_line () =
  let grid = free_grid () in
  let usable xy = not (Rgrid.blocked grid xy) in
  match
    Astar.search grid ~src:(6, 6) ~dst:(10, 6) ~usable ~use_weights:false
  with
  | Some path ->
    Alcotest.(check int) "manhattan-optimal length" 5 (List.length path);
    Alcotest.(check bool) "starts at src" true (List.hd path = (6, 6));
    Alcotest.(check bool) "ends at dst" true
      (List.nth path (List.length path - 1) = (10, 6))
  | None -> Alcotest.fail "no path on free grid"

let test_astar_detour () =
  let grid = free_grid () in
  (* Wall off a vertical line except one doorway. *)
  let wall x = List.init (Rgrid.height grid) (fun y -> (x, y)) in
  let usable (cx, cy) =
    (not (Rgrid.blocked grid (cx, cy)))
    && not (List.mem (cx, cy) (List.filter (fun (_, y) -> y <> 0) (wall 8)))
  in
  match
    Astar.search grid ~src:(6, 6) ~dst:(10, 6) ~usable ~use_weights:false
  with
  | Some path ->
    Alcotest.(check bool) "goes through the doorway" true
      (List.mem (8, 0) path);
    Alcotest.(check bool) "longer than direct" true (List.length path > 5)
  | None -> Alcotest.fail "expected detour"

let test_astar_unreachable () =
  let grid = free_grid () in
  let usable (cx, _) = cx <> 8 && not (Rgrid.blocked grid (cx, 0)) in
  Alcotest.(check bool) "walled off" true
    (Astar.search grid ~src:(6, 6) ~dst:(10, 6) ~usable ~use_weights:false
     = None)

let test_astar_weights_steer () =
  let grid = free_grid () in
  (* Cheap corridor along y = 9; everything else keeps w_e = 10. *)
  for x = 0 to Rgrid.width grid - 1 do
    Rgrid.set_weight grid (x, 9) 0.1
  done;
  let usable xy = not (Rgrid.blocked grid xy) in
  match
    Astar.search grid ~src:(5, 9) ~dst:(11, 9) ~usable ~use_weights:true
  with
  | Some path ->
    Alcotest.(check bool) "stays in corridor" true
      (List.for_all (fun (_, y) -> y = 9) path)
  | None -> Alcotest.fail "no path"

let test_astar_multi_picks_nearest () =
  let grid = free_grid () in
  let usable xy = not (Rgrid.blocked grid xy) in
  match
    Astar.search_multi grid ~srcs:[ (6, 6) ]
      ~dsts:[ (11, 11); (8, 6) ]
      ~usable ~use_weights:false
  with
  | Some path ->
    Alcotest.(check bool) "reaches the near target" true
      (List.nth path (List.length path - 1) = (8, 6))
  | None -> Alcotest.fail "no path"

let test_astar_src_is_dst () =
  let grid = free_grid () in
  let usable xy = not (Rgrid.blocked grid xy) in
  match Astar.search grid ~src:(6, 6) ~dst:(6, 6) ~usable ~use_weights:false with
  | Some [ cell ] -> Alcotest.(check bool) "trivial path" true (cell = (6, 6))
  | Some p -> Alcotest.failf "expected singleton, got %d cells" (List.length p)
  | None -> Alcotest.fail "no trivial path"

let test_path_cost () =
  let grid = free_grid () in
  Alcotest.(check (float 1e-9)) "unweighted" 3.
    (Astar.path_cost grid ~use_weights:false [ (6, 6); (7, 6); (8, 6) ]);
  Alcotest.(check (float 1e-9)) "weighted" (3. +. (3. *. we))
    (Astar.path_cost grid ~use_weights:true [ (6, 6); (7, 6); (8, 6) ])

let test_astar_tie_breaking_deterministic () =
  (* A diagonal search on an open grid has many equal-cost paths; the
     search must pick the same one on every run, on a fresh grid, and
     with or without a shared heuristic-field cache (the open-queue
     tie-breaking depends only on the push sequence, which the BFS field
     preserves). *)
  let search ?field_cache grid =
    let usable xy = not (Rgrid.blocked grid xy) in
    match
      Astar.search_multi ?field_cache grid ~srcs:[ (5, 5) ]
        ~dsts:[ (11, 11); (11, 10) ]
        ~usable ~use_weights:false
    with
    | Some path -> path
    | None -> Alcotest.fail "no path on free grid"
  in
  let grid = free_grid () in
  let reference = search grid in
  for _ = 1 to 5 do
    Alcotest.(check bool) "stable across runs" true (search grid = reference)
  done;
  Alcotest.(check bool) "stable across grids" true
    (search (free_grid ()) = reference);
  let field_cache = Hashtbl.create 4 in
  Alcotest.(check bool) "cold cache identical" true
    (search ~field_cache grid = reference);
  Alcotest.(check bool) "warm cache identical" true
    (search ~field_cache grid = reference);
  Alcotest.(check int) "cache was shared" 1 (Hashtbl.length field_cache)

(* --- Routed helpers --- *)

let transport removal depart arrive : Types.transport =
  { edge = (0, 1); src = 0; dst = 1; removal; depart; arrive; fluid = easy }

let test_occupancy_no_cache () =
  let task =
    { Routed.transport = transport 3. 3. 5.; kind = Routed.Transport;
      path = [ (0, 0); (1, 0); (2, 0) ]; delay = 0.; pre_wash = 0.;
      washed_cells = 0 }
  in
  List.iter
    (fun (_, iv) ->
      Alcotest.(check (float 1e-9)) "full window lo" 3. (Interval.lo iv);
      Alcotest.(check (float 1e-9)) "full window hi" 5. (Interval.hi iv))
    (Routed.occupancy ~tc task)

let test_occupancy_with_cache () =
  let task =
    { Routed.transport = transport 1. 9. 11.; kind = Routed.Transport;
      path = [ (0, 0); (1, 0); (2, 0); (3, 0) ];
      delay = 0.; pre_wash = 0.; washed_cells = 0 }
  in
  (match Routed.occupancy ~tc task with
   | [ (_, src_iv); (_, park_iv); (_, mid_iv); (_, dst_iv) ] ->
     Alcotest.(check (float 1e-9)) "src released after sweep" 3.
       (Interval.hi src_iv);
     Alcotest.(check (float 1e-9)) "parking holds from removal" 1.
       (Interval.lo park_iv);
     Alcotest.(check (float 1e-9)) "parking holds to arrival" 11.
       (Interval.hi park_iv);
     Alcotest.(check (float 1e-9)) "downstream only final sweep" 9.
       (Interval.lo mid_iv);
     Alcotest.(check (float 1e-9)) "dst window" 9. (Interval.lo dst_iv)
   | _ -> Alcotest.fail "expected four cells")

let test_occupancy_delay_shifts () =
  let task =
    { Routed.transport = transport 3. 3. 5.; kind = Routed.Transport;
      path = [ (0, 0) ]; delay = 2.; pre_wash = 0.; washed_cells = 0 }
  in
  match Routed.occupancy ~tc task with
  | [ (_, iv) ] ->
    Alcotest.(check (float 1e-9)) "shifted lo" 5. (Interval.lo iv);
    Alcotest.(check (float 1e-9)) "shifted hi" 7. (Interval.hi iv)
  | _ -> Alcotest.fail "expected one cell"

let test_settle_delay_resolves () =
  let grid = free_grid () in
  let path = [ (6, 6); (7, 6) ] in
  Rgrid.add_occupation grid (7, 6)
    { Rgrid.interval = Interval.make 0. 10.; fluid = hard };
  let tr = transport 1. 1. 3. in
  match Routed.settle_delay grid ~tc tr ~src_ports:[ (6, 6) ] path with
  | Some d ->
    Alcotest.(check bool) "positive" true (d > 0.);
    List.iter
      (fun xy ->
        Alcotest.(check bool) "free after delay" true
          (Routed.usable grid ~tc tr ~delay:d ~src_ports:[ (6, 6) ] xy))
      path
  | None -> Alcotest.fail "expected a finite settle delay"

(* --- Router end-to-end --- *)

(* Replay a routing result on a fresh grid and verify every commit was
   conflict-free under the occupancy semantics. *)
let replay_conflict_free chip (result : Routed.result) =
  let grid = Rgrid.create ~we chip in
  List.for_all
    (fun (task : Routed.task) ->
      let ok =
        List.for_all
          (fun (xy, iv) ->
            Rgrid.conflict_free grid xy iv task.transport.fluid)
          (Routed.occupancy ~tc task)
      in
      Routed.commit grid ~tc task;
      ok)
    result.tasks

let test_router_routes_all () =
  List.iter
    (fun index ->
      let sched, chip, result = routed_instance index in
      let transports =
        List.filter (fun (t : Routed.task) -> t.kind = Routed.Transport)
          result.tasks
      in
      Alcotest.(check int) "all transports routed"
        (Mfb_schedule.Metrics.transport_count sched)
        (List.length transports);
      Alcotest.(check int) "no unresolved" 0 result.unresolved;
      Alcotest.(check bool) "replay conflict-free" true
        (replay_conflict_free chip result))
    [ 0; 1; 2; 3 ]

let test_router_paths_connect_ports () =
  let sched, _chip, result = routed_instance 2 in
  ignore sched;
  List.iter
    (fun (task : Routed.task) ->
      if task.kind <> Routed.Transport then () else
      let tr = task.transport in
      let grid = result.grid in
      let first = List.hd task.path in
      let last = List.nth task.path (List.length task.path - 1) in
      Alcotest.(check bool) "starts at a src port" true
        (List.mem first (Rgrid.ports grid tr.src));
      Alcotest.(check bool) "ends at a dst port" true
        (List.mem last (Rgrid.ports grid tr.dst));
      (* Consecutive path cells are 4-adjacent. *)
      let rec adjacent = function
        | (x1, y1) :: (((x2, y2) :: _) as rest) ->
          abs (x1 - x2) + abs (y1 - y2) = 1 && adjacent rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "path connected" true (adjacent task.path))
    result.tasks

let test_router_channel_length () =
  let _, _, result = routed_instance 2 in
  let distinct = List.length (Rgrid.used_cells result.grid) in
  Alcotest.(check (float 1e-9)) "distinct cells x pitch"
    (float_of_int distinct *. Routed.pitch_mm)
    result.total_channel_length_mm

let test_router_weight_update_effect () =
  let _, _, updated = routed_instance ~weight_update:true 2 in
  let _, _, frozen = routed_instance ~weight_update:false 2 in
  (* With updates some routed cell must carry a non-w_e weight. *)
  let some_changed =
    List.exists
      (fun xy -> Rgrid.weight updated.grid xy <> we)
      (Rgrid.used_cells updated.grid)
  in
  let none_changed =
    List.for_all
      (fun xy -> Rgrid.weight frozen.grid xy = we)
      (Rgrid.used_cells frozen.grid)
  in
  Alcotest.(check bool) "weights updated" true some_changed;
  Alcotest.(check bool) "ablation keeps w_e" true none_changed

let test_router_tc_validation () =
  let chip = chip_of (1, 0, 0, 0) in
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  Alcotest.check_raises "tc" (Invalid_argument "Router.route: tc must be positive")
    (fun () -> ignore (Router.route ~we ~tc:0. chip sched))

(* --- I/O dispensing and waste routing --- *)

let io_instance index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  let nets =
    Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4 (Mfb_place.Net.of_schedule sched)
  in
  let placed =
    Mfb_place.Annealer.place
      ~params:{ Mfb_place.Annealer.default_params with t0 = 100.; i_max = 40 }
      ~rng:(Mfb_util.Rng.create 42) ~nets sched.components
  in
  (sched, placed.chip,
   Router.route ~route_io:true ~we ~tc placed.chip sched)

let test_io_templates_cover_sources_and_sinks () =
  let g, alloc = List.nth (Testkit.suite_instances ()) 2 (* CPA *) in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  let temps = Mfb_route.Io_router.templates ~tc sched in
  let dispense =
    List.length
      (List.filter (fun (_, k) -> k = Routed.Dispense) temps)
  in
  let waste =
    List.length (List.filter (fun (_, k) -> k = Routed.Waste) temps)
  in
  Alcotest.(check int) "one dispense per source"
    (List.length (Mfb_bioassay.Seq_graph.sources g))
    dispense;
  Alcotest.(check int) "one waste per sink"
    (List.length (Mfb_bioassay.Seq_graph.sinks g))
    waste

let test_io_routing_adds_tasks_and_stays_clean () =
  List.iter
    (fun index ->
      let sched, chip, result = io_instance index in
      let g = sched.Types.graph in
      let io_tasks =
        List.filter (fun (t : Routed.task) -> t.kind <> Routed.Transport)
          result.tasks
      in
      Alcotest.(check int)
        (Printf.sprintf "instance %d: io task count" index)
        (List.length (Mfb_bioassay.Seq_graph.sources g)
        + List.length (Mfb_bioassay.Seq_graph.sinks g))
        (List.length io_tasks);
      Alcotest.(check bool) "drc clean with io" true
        (Mfb_route.Drc.is_clean chip result);
      (* Replay cleanliness is guaranteed whenever no best-effort commit
         was needed. *)
      if result.unresolved = 0 then
        Alcotest.(check bool) "replay conflict-free" true
          (replay_conflict_free chip result))
    [ 0; 1; 2; 3 ]

let test_io_dispense_arrival () =
  let sched, _, result = io_instance 2 in
  List.iter
    (fun (t : Routed.task) ->
      match t.kind with
      | Routed.Dispense ->
        let op = fst t.transport.edge in
        Alcotest.(check (float 1e-6)) "arrives at op start"
          sched.Types.times.(op).start
          t.transport.arrive
      | Routed.Waste | Routed.Transport -> ())
    result.tasks

(* --- Hydraulics --- *)

let test_hydraulics_calibration () =
  let _, _, result = routed_instance 0 in
  let h = Mfb_route.Hydraulics.analyse ~tc result in
  List.iter
    (fun (t : Mfb_route.Hydraulics.task_check) ->
      (* Physical time scales linearly with cells; at the reference length
         the error is exactly zero. *)
      Alcotest.(check (float 1e-9)) "linear model"
        (tc *. float_of_int t.cells
        /. float_of_int Mfb_route.Hydraulics.reference_cells)
        t.physical_time;
      if t.cells = Mfb_route.Hydraulics.reference_cells then
        Alcotest.(check (float 1e-9)) "zero at reference" 0. t.relative_error)
    h.tasks;
  Alcotest.(check bool) "margin at least 1" true (h.pressure_margin >= 1.);
  Alcotest.(check bool) "worst underestimate non-negative" true
    (h.worst_underestimate >= 0.)

let test_hydraulics_ignores_io () =
  let _, _, result = io_instance 0 in
  let h = Mfb_route.Hydraulics.analyse ~tc result in
  let transports =
    List.filter (fun (t : Routed.task) -> t.kind = Routed.Transport)
      result.tasks
  in
  Alcotest.(check int) "inter-component transports only"
    (List.length transports)
    (List.length h.tasks)

(* --- Defect repair --- *)

let channel_outcome = function
  | Mfb_route.Repair.Channel o -> o
  | Mfb_route.Repair.Component_fault _ ->
    Alcotest.fail "expected a channel defect, got a component fault"

let test_repair_unused_cell_is_free () =
  let sched, chip, result = routed_instance 0 in
  let grid = result.grid in
  let used = Mfb_route.Rgrid.used_cells grid in
  let free =
    let rec scan x y =
      if y >= chip.Chip.height then Alcotest.fail "no free cell"
      else if x >= chip.Chip.width then scan 0 (y + 1)
      else if
        (not (Mfb_route.Rgrid.blocked grid (x, y)))
        && not (List.mem (x, y) used)
      then (x, y)
      else scan (x + 1) y
    in
    scan 0 0
  in
  let outcome =
    channel_outcome
      (Mfb_route.Repair.inject ~we ~tc chip sched result ~defect:free)
  in
  Alcotest.(check int) "nothing affected" 0 outcome.affected;
  Alcotest.(check bool) "survives" true outcome.survived

let test_repair_component_cell_is_component_fault () =
  (* A defect on a component footprint is valid field data — a dead
     component, not a channel fault — and must come back as a structured
     [Component_fault] naming the owner, never as an exception. *)
  let sched, chip, result = routed_instance 0 in
  let blocked_cell = List.hd (Chip.blocked_cells chip) in
  (match
     Mfb_route.Repair.inject ~we ~tc chip sched result ~defect:blocked_cell
   with
   | Mfb_route.Repair.Component_fault { component } ->
     (match Mfb_route.Repair.owner chip blocked_cell with
      | Some c -> Alcotest.(check int) "fault names the owner" c component
      | None -> Alcotest.fail "blocked cell has no owning component")
   | Mfb_route.Repair.Channel _ ->
     Alcotest.fail "footprint defect reported as a channel defect")

let test_repair_cells_row_major () =
  (* The shared channel-cell enumeration is row-major and contains
     exactly the unblocked cells. *)
  let _, chip, result = routed_instance 0 in
  let cells = Mfb_route.Repair.cells chip in
  let sorted =
    List.sort
      (fun (x1, y1) (x2, y2) ->
        let c = compare y1 y2 in
        if c <> 0 then c else compare x1 x2)
      cells
  in
  Alcotest.(check bool) "row-major order" true (cells = sorted);
  List.iter
    (fun cell ->
      Alcotest.(check bool) "channel cells are unblocked" false
        (Mfb_route.Rgrid.blocked result.grid cell))
    cells;
  let expected =
    chip.Chip.width * chip.Chip.height
    - List.length
        (List.sort_uniq compare (Chip.blocked_cells chip))
  in
  Alcotest.(check int) "covers every channel cell" expected
    (List.length cells)

let test_repair_last_task_path_defect () =
  (* A defect on the committed path of the last routed task must count
     that task as affected: repair sees every committed path, including
     the final one (an off-by-one here would silently pass defects
     through the tail of the routing order). *)
  let sched, chip, result = routed_instance 0 in
  (match List.rev result.tasks with
   | [] -> Alcotest.fail "instance routed no tasks"
   | (last : Routed.task) :: _ ->
     let defect = List.nth last.path (List.length last.path / 2) in
     let outcome =
       channel_outcome
         (Mfb_route.Repair.inject ~we ~tc chip sched result ~defect)
     in
     Alcotest.(check bool) "defect recorded" true (outcome.defect = defect);
     Alcotest.(check bool) "last task is affected" true
       (outcome.affected >= 1);
     Alcotest.(check bool) "repaired bounded by affected" true
       (outcome.repaired <= outcome.affected))

let test_repair_unoccupied_cell_is_noop () =
  (* A defect on a routable cell no occupation ever touches is a pure
     no-op: nothing affected, nothing repaired, design survives. *)
  let sched, chip, result = routed_instance 0 in
  let grid = result.grid in
  let used = Mfb_route.Rgrid.used_cells grid in
  let on_some_path (x, y) =
    List.exists
      (fun (t : Routed.task) -> List.mem (x, y) t.path)
      result.tasks
  in
  let free =
    let rec scan x y =
      if y >= chip.Chip.height then Alcotest.fail "no unoccupied cell"
      else if x >= chip.Chip.width then scan 0 (y + 1)
      else if
        (not (Mfb_route.Rgrid.blocked grid (x, y)))
        && (not (List.mem (x, y) used))
        && not (on_some_path (x, y))
      then (x, y)
      else scan (x + 1) y
    in
    scan 0 0
  in
  let outcome =
    channel_outcome
      (Mfb_route.Repair.inject ~we ~tc chip sched result ~defect:free)
  in
  Alcotest.(check int) "affected" 0 outcome.affected;
  Alcotest.(check int) "repaired" 0 outcome.repaired;
  Alcotest.(check bool) "survived" true outcome.survived

let test_repair_yield_bounds () =
  List.iter
    (fun index ->
      let sched, chip, result = routed_instance index in
      let y =
        Mfb_route.Repair.single_defect_yield ~we ~tc chip sched result
      in
      Alcotest.(check bool) "yield in [0,1]" true
        (0. <= y.yield && y.yield <= 1.);
      Alcotest.(check bool) "survived <= tested" true
        (y.survived <= y.cells_tested);
      (match y.worst with
       | Some o ->
         Alcotest.(check bool) "worst really failed" false o.survived;
         Alcotest.(check bool) "worst repaired < affected" true
           (o.repaired < o.affected)
       | None ->
         Alcotest.(check int) "perfect yield" y.cells_tested y.survived))
    [ 0; 1 ]

(* --- Determinism of the full routing stage --- *)

let test_router_deterministic () =
  let _, _, a = routed_instance 4 in
  let _, _, b = routed_instance 4 in
  Alcotest.(check (float 1e-9)) "channel length stable"
    a.total_channel_length_mm b.total_channel_length_mm;
  Alcotest.(check (float 1e-9)) "delays stable" a.total_delay b.total_delay;
  Alcotest.(check (float 1e-9)) "wash stable" a.total_channel_wash
    b.total_channel_wash;
  List.iter2
    (fun (x : Routed.task) (y : Routed.task) ->
      Alcotest.(check bool) "paths identical" true (x.path = y.path))
    a.tasks b.tasks

(* --- Negotiated (PathFinder-style) router --- *)

let negotiated_instance index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  let nets =
    Mfb_place.Energy.weigh ~beta:0.6 ~gamma:0.4 (Mfb_place.Net.of_schedule sched)
  in
  let placed =
    Mfb_place.Annealer.place
      ~params:{ Mfb_place.Annealer.default_params with t0 = 100.; i_max = 40 }
      ~rng:(Mfb_util.Rng.create 42) ~nets sched.components
  in
  (sched, placed.chip,
   Mfb_route.Negotiated_router.route ~we ~tc placed.chip sched)

let test_negotiated_routes_all () =
  List.iter
    (fun index ->
      let sched, chip, result = negotiated_instance index in
      Alcotest.(check int)
        (Printf.sprintf "instance %d: all transports" index)
        (Mfb_schedule.Metrics.transport_count sched)
        (List.length
           (List.filter (fun (t : Routed.task) -> t.kind = Routed.Transport)
              result.tasks));
      Alcotest.(check bool) "replay conflict-free" true
        (replay_conflict_free chip result);
      Alcotest.(check bool) "drc clean" true
        (Mfb_route.Drc.is_clean chip result))
    [ 0; 2; 4 ]

let test_negotiated_deterministic () =
  let _, _, a = negotiated_instance 3 in
  let _, _, b = negotiated_instance 3 in
  Alcotest.(check (float 1e-9)) "same channel length"
    a.total_channel_length_mm b.total_channel_length_mm;
  Alcotest.(check (float 1e-9)) "same delay" a.total_delay b.total_delay

let test_negotiated_validation () =
  let chip = chip_of (1, 0, 0, 0) in
  let g, alloc = List.hd (Testkit.suite_instances ()) in
  let sched = Mfb_schedule.Dcsa_scheduler.schedule ~tc g alloc in
  Alcotest.check_raises "tc"
    (Invalid_argument "Negotiated_router.route: tc must be positive")
    (fun () ->
      ignore (Mfb_route.Negotiated_router.route ~we ~tc:0. chip sched))

(* --- Baseline router --- *)

let baseline_instance index =
  let g, alloc = List.nth (Testkit.suite_instances ()) index in
  let sched = Mfb_schedule.Baseline_scheduler.schedule ~tc g alloc in
  let nets = Mfb_place.Energy.uniform (Mfb_place.Net.of_schedule sched) in
  let chip = Mfb_place.Greedy_place.place ~nets sched.components in
  (sched, chip, Baseline_router.route ~we ~tc chip sched)

let test_baseline_router_completes () =
  List.iter
    (fun index ->
      let sched, _, result = baseline_instance index in
      Alcotest.(check int) "all transports routed"
        (Mfb_schedule.Metrics.transport_count sched)
        (List.length
           (List.filter (fun (t : Routed.task) -> t.kind = Routed.Transport)
              result.tasks));
      Alcotest.(check bool) "delays non-negative" true
        (List.for_all (fun (t : Routed.task) -> t.delay >= 0.) result.tasks))
    [ 0; 1; 2; 3 ]

let test_baseline_router_metrics_finite () =
  let _, _, result = baseline_instance 2 in
  Alcotest.(check bool) "finite wash" true
    (Float.is_finite result.total_channel_wash);
  Alcotest.(check bool) "finite delay" true
    (Float.is_finite result.total_delay);
  Alcotest.(check bool) "positive length" true
    (result.total_channel_length_mm > 0.)

(* --- DRC --- *)

let test_drc_clean_on_suite () =
  List.iter
    (fun index ->
      let _, chip, result = routed_instance index in
      let violations = Mfb_route.Drc.check chip result in
      if violations <> [] then
        Alcotest.failf "instance %d: %a" index Mfb_route.Drc.pp_violation
          (List.hd violations))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_drc_clean_on_baseline () =
  List.iter
    (fun index ->
      let _, chip, result = baseline_instance index in
      Alcotest.(check bool)
        (Printf.sprintf "baseline %d clean" index)
        true
        (Mfb_route.Drc.is_clean chip result))
    [ 0; 2; 4 ]

let test_drc_detects_overlapping_components () =
  let _, chip, result = routed_instance 0 in
  let bad = Mfb_place.Chip.copy chip in
  bad.places.(1) <- bad.places.(0);
  Alcotest.(check bool) "placement violation" true
    (List.exists
       (fun (v : Mfb_route.Drc.violation) -> v.rule = "placement")
       (Mfb_route.Drc.check bad result))

let test_drc_detects_broken_path () =
  let _, chip, result = routed_instance 0 in
  let broken =
    { result with
      tasks =
        (match result.tasks with
         | t :: rest -> { t with path = [ (1, 1); (5, 5) ] } :: rest
         | [] -> []) }
  in
  let rules =
    List.map (fun (v : Mfb_route.Drc.violation) -> v.rule)
      (Mfb_route.Drc.check chip broken)
  in
  Alcotest.(check bool) "path or port violation" true
    (List.mem "path" rules || List.mem "port" rules)

(* --- Wash-flush planning --- *)

let test_wash_plan_covers_dirty_tasks () =
  let _, _, result = routed_instance 2 in
  let plan = Mfb_route.Wash_plan.plan ~tc result in
  let dirty =
    List.filter (fun (t : Routed.task) -> t.pre_wash > 0.) result.tasks
  in
  Alcotest.(check int) "one flush per dirty task" (List.length dirty)
    (List.length plan.flushes);
  Alcotest.(check (float 1e-6)) "flush time = total channel wash"
    result.total_channel_wash plan.total_flush_time

let test_wash_plan_routes_reach_border () =
  let _, chip, result = routed_instance 2 in
  let plan = Mfb_route.Wash_plan.plan ~tc result in
  let on_border (x, y) =
    x = 0 || y = 0 || x = chip.Chip.width - 1 || y = chip.Chip.height - 1
  in
  List.iter
    (fun (f : Mfb_route.Wash_plan.flush) ->
      match f.route with
      | [] -> Alcotest.fail "empty flush route"
      | first :: rest ->
        let last = List.fold_left (fun _ xy -> xy) first rest in
        Alcotest.(check bool) "inlet on border" true (on_border first);
        Alcotest.(check bool) "outlet on border" true (on_border last);
        let rec connected = function
          | (x1, y1) :: (((x2, y2) :: _) as tl) ->
            abs (x1 - x2) + abs (y1 - y2) = 1 && connected tl
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "route connected" true (connected f.route))
    plan.flushes

let test_wash_plan_windows_end_at_entry () =
  let _, _, result = routed_instance 3 in
  let plan = Mfb_route.Wash_plan.plan ~tc result in
  List.iter
    (fun (f : Mfb_route.Wash_plan.flush) ->
      Alcotest.(check (float 1e-6)) "window duration = wash duration"
        f.duration
        (Interval.duration f.window))
    plan.flushes

let test_wash_plan_clean_design_empty () =
  (* PCR under our flow needs no channel washes at all. *)
  let _, _, result = routed_instance 0 in
  let plan = Mfb_route.Wash_plan.plan ~tc result in
  Alcotest.(check int) "interference-free" 0 plan.total_interferences;
  Alcotest.(check bool) "volume consistent" true
    (plan.buffer_volume_cells >= 0.)

let suites =
  [
    ( "route.rgrid",
      [
        Alcotest.test_case "blocked matches chip" `Quick
          test_grid_blocked_matches_chip;
        Alcotest.test_case "ports" `Quick test_grid_ports;
        Alcotest.test_case "weights" `Quick test_grid_weights;
        Alcotest.test_case "we validation" `Quick test_grid_we_validation;
        Alcotest.test_case "conflict_free" `Quick test_conflict_free_overlap;
        Alcotest.test_case "blocked cells unusable" `Quick
          test_conflict_free_blocked;
        Alcotest.test_case "required_delay" `Quick test_required_delay;
        Alcotest.test_case "wash_debt" `Quick test_wash_debt;
        Alcotest.test_case "neighbours" `Quick test_neighbours;
        Alcotest.test_case "required_delay fuel on cascades" `Quick
          test_required_delay_fuel;
        Alcotest.test_case "wash_debt boundaries" `Quick
          test_wash_debt_boundaries;
      ] );
    ( "route.astar",
      [
        Alcotest.test_case "straight line" `Quick test_astar_straight_line;
        Alcotest.test_case "detour" `Quick test_astar_detour;
        Alcotest.test_case "unreachable" `Quick test_astar_unreachable;
        Alcotest.test_case "weights steer" `Quick test_astar_weights_steer;
        Alcotest.test_case "multi-target nearest" `Quick
          test_astar_multi_picks_nearest;
        Alcotest.test_case "src = dst" `Quick test_astar_src_is_dst;
        Alcotest.test_case "path cost" `Quick test_path_cost;
        Alcotest.test_case "tie-breaking deterministic" `Quick
          test_astar_tie_breaking_deterministic;
      ] );
    ( "route.occupancy",
      [
        Alcotest.test_case "no cache" `Quick test_occupancy_no_cache;
        Alcotest.test_case "with cache" `Quick test_occupancy_with_cache;
        Alcotest.test_case "delay shifts" `Quick test_occupancy_delay_shifts;
        Alcotest.test_case "settle_delay resolves" `Quick
          test_settle_delay_resolves;
      ] );
    ( "route.router",
      [
        Alcotest.test_case "routes all transports" `Quick
          test_router_routes_all;
        Alcotest.test_case "paths connect ports" `Quick
          test_router_paths_connect_ports;
        Alcotest.test_case "channel length" `Quick test_router_channel_length;
        Alcotest.test_case "weight update ablation" `Quick
          test_router_weight_update_effect;
        Alcotest.test_case "tc validation" `Quick test_router_tc_validation;
        Alcotest.test_case "deterministic" `Quick test_router_deterministic;
      ] );
    ( "route.io",
      [
        Alcotest.test_case "templates cover sources and sinks" `Quick
          test_io_templates_cover_sources_and_sinks;
        Alcotest.test_case "io routing clean" `Quick
          test_io_routing_adds_tasks_and_stays_clean;
        Alcotest.test_case "dispense arrives at start" `Quick
          test_io_dispense_arrival;
      ] );
    ( "route.hydraulics",
      [
        Alcotest.test_case "calibration" `Quick test_hydraulics_calibration;
        Alcotest.test_case "ignores io" `Quick test_hydraulics_ignores_io;
      ] );
    ( "route.repair",
      [
        Alcotest.test_case "unused cell free" `Quick
          test_repair_unused_cell_is_free;
        Alcotest.test_case "component cell is a component fault" `Quick
          test_repair_component_cell_is_component_fault;
        Alcotest.test_case "cells is row-major" `Quick
          test_repair_cells_row_major;
        Alcotest.test_case "last task's path is repairable" `Quick
          test_repair_last_task_path_defect;
        Alcotest.test_case "unoccupied cell is a no-op" `Quick
          test_repair_unoccupied_cell_is_noop;
        Alcotest.test_case "yield bounds" `Quick test_repair_yield_bounds;
      ] );
    ( "route.negotiated",
      [
        Alcotest.test_case "routes all" `Quick test_negotiated_routes_all;
        Alcotest.test_case "deterministic" `Quick
          test_negotiated_deterministic;
        Alcotest.test_case "validation" `Quick test_negotiated_validation;
      ] );
    ( "route.baseline",
      [
        Alcotest.test_case "completes" `Quick test_baseline_router_completes;
        Alcotest.test_case "metrics finite" `Quick
          test_baseline_router_metrics_finite;
      ] );
    ( "route.drc",
      [
        Alcotest.test_case "suite clean" `Quick test_drc_clean_on_suite;
        Alcotest.test_case "baseline clean" `Quick test_drc_clean_on_baseline;
        Alcotest.test_case "detects overlap" `Quick
          test_drc_detects_overlapping_components;
        Alcotest.test_case "detects broken path" `Quick
          test_drc_detects_broken_path;
      ] );
    ( "route.wash_plan",
      [
        Alcotest.test_case "covers dirty tasks" `Quick
          test_wash_plan_covers_dirty_tasks;
        Alcotest.test_case "routes reach border" `Quick
          test_wash_plan_routes_reach_border;
        Alcotest.test_case "windows end at entry" `Quick
          test_wash_plan_windows_end_at_entry;
        Alcotest.test_case "clean design" `Quick
          test_wash_plan_clean_design_empty;
      ] );
  ]
