(* The defect-repair subsystem: seeded defect plans, the incremental
   warm-start repair ladder, its legality oracle, and the determinism /
   telemetry obligations (reports byte-stable, counters jobs-invariant). *)

module Defect = Mfb_repair.Defect
module Plan = Mfb_repair.Plan
module Flow = Mfb_core.Flow
module Config = Mfb_core.Config
module Suite = Mfb_core.Suite
module Check = Mfb_schedule.Check
module Routed = Mfb_route.Routed
module Repair = Mfb_route.Repair
module Telemetry = Mfb_util.Telemetry
module Json = Mfb_util.Json

let qtest ?(count = 25) name gen prop =
  let rand = Random.State.make [| Hashtbl.hash name |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)

let cfg =
  let d = Config.default in
  { d with sa = { d.sa with t0 = 200.; i_max = 40 } }

let instance name =
  match Suite.find name with
  | Some i -> i
  | None -> Alcotest.failf "unknown benchmark %s" name

let result_of ?(jobs = 1) name =
  let inst = instance name in
  Flow.run ~config:cfg ~jobs ~route_io:true inst.graph inst.allocation

(* Memoised synthesis results — several tests repair the same designs. *)
let pcr = lazy (result_of "pcr")
let ivd = lazy (result_of "ivd")

let check_clean ~defects outcome =
  match Plan.verify ~config:cfg ~defects outcome with
  | [] -> ()
  | vs ->
    Alcotest.failf "repair verification: %s" (String.concat "; " vs)

(* --- Defect plans ----------------------------------------------------- *)

let test_plan_roundtrip () =
  let plan =
    [
      { Defect.tick = 0; target = Defect.Cell (3, 4) };
      { Defect.tick = 2; target = Defect.Component 1 };
    ]
  in
  (match Defect.of_json (Defect.to_json plan) with
   | Ok p -> Alcotest.(check bool) "roundtrip" true (p = plan)
   | Error e -> Alcotest.fail e);
  (* tick defaults to 0; unknown kinds are structured errors. *)
  (match
     Defect.of_json
       (Json.Obj
          [ ("defects",
             Json.List
               [ Json.Obj
                   [ ("kind", Json.String "cell"); ("x", Json.Int 1);
                     ("y", Json.Int 2) ] ]) ])
   with
   | Ok [ { Defect.tick = 0; target = Defect.Cell (1, 2) } ] -> ()
   | Ok _ -> Alcotest.fail "wrong parse"
   | Error e -> Alcotest.fail e);
  match
    Defect.of_json
      (Json.Obj
         [ ("defects", Json.List [ Json.Obj [ ("kind", Json.String "x") ] ])
         ])
  with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error _ -> ()

let test_generators_deterministic () =
  let r = Lazy.force pcr in
  List.iter
    (fun seed ->
      Alcotest.(check bool) "single_cell stable" true
        (Defect.single_cell ~seed r.chip = Defect.single_cell ~seed r.chip);
      let c = Defect.clustered ~seed ~radius:2 r.chip in
      Alcotest.(check bool) "clustered stable" true
        (c = Defect.clustered ~seed ~radius:2 r.chip);
      Alcotest.(check bool) "clustered non-empty" true (c <> []);
      let p = Defect.progressive ~seed ~count:5 r.chip in
      Alcotest.(check int) "progressive count" 5 (List.length p);
      Alcotest.(check int) "progressive ticks" 4 (Defect.max_tick p);
      Alcotest.(check int) "progressive distinct" 5
        (List.length (List.sort_uniq compare (Defect.targets p)));
      match (Defect.check r.chip c, Defect.check r.chip p) with
      | Ok (), Ok () -> ()
      | Error e, _ | _, Error e -> Alcotest.fail e)
    [ 0; 1; 7 ]

(* --- The repair ladder ------------------------------------------------ *)

let test_unused_cell_noop () =
  let r = Lazy.force pcr in
  let used = Mfb_route.Rgrid.used_cells r.routing.grid in
  let free =
    match
      List.find_opt (fun c -> not (List.mem c used)) (Repair.cells r.chip)
    with
    | Some c -> c
    | None -> Alcotest.fail "no free channel cell"
  in
  let defects = [ Defect.Cell free ] in
  let o = Plan.repair ~config:cfg r ~defects in
  Alcotest.(check int) "nothing ripped" 0 o.report.ripped_up;
  Alcotest.(check bool) "no rung" true (o.report.rung = None);
  Alcotest.(check bool) "survived" true o.report.survived;
  Alcotest.(check (float 1e-9)) "makespan kept" o.report.makespan_before
    o.report.makespan_after;
  check_clean ~defects o

let test_single_cell_repair_legal () =
  let r = Lazy.force pcr in
  (* Put the defect on a used cell so something is actually ripped. *)
  let defect = List.hd (Mfb_route.Rgrid.used_cells r.routing.grid) in
  let defects = [ Defect.Cell defect ] in
  let o = Plan.repair ~config:cfg r ~defects in
  Alcotest.(check bool) "ripped something" true (o.report.ripped_up > 0);
  if o.report.survived then check_clean ~defects o;
  Alcotest.(check bool) "makespan monotone" true
    (o.report.makespan_after >= o.report.makespan_before -. 1e-9)

let test_cached_fluid_cell_repair () =
  (* A defect under a stored (cached-in-channel) fluid: pick the cell
     whose occupation is longest — with channel caching that is a
     near-source parking cell holding a fluid over its whole cache
     window — and verify the repair still yields a legal design. *)
  let r = Lazy.force ivd in
  let longest = ref None in
  List.iter
    (fun (task : Routed.task) ->
      List.iter
        (fun (cell, iv) ->
          let len = Mfb_util.Interval.duration iv in
          match !longest with
          | Some (_, l) when l >= len -> ()
          | _ -> longest := Some (cell, len))
        (Routed.occupancy ~tc:cfg.tc task))
    r.routing.tasks;
  match !longest with
  | None -> Alcotest.fail "no occupations"
  | Some (cell, len) ->
    Alcotest.(check bool) "cell really caches a fluid" true
      (len > 2. *. cfg.tc);
    let defects = [ Defect.Cell cell ] in
    let o = Plan.repair ~config:cfg r ~defects in
    Alcotest.(check bool) "ripped the cached task" true
      (o.report.ripped_up > 0);
    if o.report.survived then check_clean ~defects o
    else Alcotest.(check bool) "failure counted" true (o.report.failed > 0)

let test_component_fault_rebinds () =
  let r = Lazy.force ivd in
  (* ivd allocates 3 mixers; kill one that executes operations so the
     rebind rung must actually move work. *)
  let busy =
    let used =
      Array.fold_left
        (fun acc (t : Mfb_schedule.Types.op_times) -> t.component :: acc)
        [] r.schedule.times
    in
    List.hd (List.sort_uniq compare used)
  in
  let defects = [ Defect.Component busy ] in
  let o = Plan.repair ~config:cfg r ~defects in
  if o.report.survived then begin
    Alcotest.(check bool) "rebound ops" true (o.report.rebound > 0);
    Alcotest.(check bool) "rung is at least rebind" true
      (o.report.rung = Some Plan.Rebound
      || o.report.rung = Some Plan.Resynthesized);
    Array.iter
      (fun (t : Mfb_schedule.Types.op_times) ->
        Alcotest.(check bool) "no op left on the dead component" true
          (t.component <> busy))
      o.schedule.times;
    check_clean ~defects o
  end
  else Alcotest.(check bool) "honest failure" true (o.report.failed > 0)

let test_footprint_cell_lifts_to_component () =
  let r = Lazy.force ivd in
  let cell = List.hd (Mfb_place.Chip.blocked_cells r.chip) in
  let o = Plan.repair ~config:cfg r ~defects:[ Defect.Cell cell ] in
  match o.report.targets with
  | [ Defect.Component c ] ->
    (match Repair.owner r.chip cell with
     | Some owner -> Alcotest.(check int) "lifted to owner" owner c
     | None -> Alcotest.fail "blocked cell without owner")
  | _ -> Alcotest.fail "footprint cell not lifted to a component fault"

(* --- Determinism and telemetry --------------------------------------- *)

let report_bytes o = Json.to_string (Plan.report_to_json o.Plan.report)

let test_repair_deterministic_and_jobs_invariant () =
  let defects = [ Defect.Cell (0, 0) ] in
  let r1 = result_of "pcr" and r2 = result_of ~jobs:2 "pcr" in
  let defect =
    List.hd (Mfb_route.Rgrid.used_cells r1.routing.grid)
  in
  let defects = Defect.Cell defect :: defects in
  let o1 = Plan.repair ~config:cfg r1 ~defects in
  let o1' = Plan.repair ~config:cfg r1 ~defects in
  let o2 = Plan.repair ~config:cfg r2 ~defects in
  Alcotest.(check string) "same run, same bytes" (report_bytes o1)
    (report_bytes o1');
  Alcotest.(check string) "jobs=2 synthesis, same bytes" (report_bytes o1)
    (report_bytes o2);
  Alcotest.(check bool) "same repaired schedule" true
    (o1.schedule = o2.schedule)

let counter sink name = Telemetry.counter_total sink ~cat:"repair" name

let test_repair_counters_jobs_invariant () =
  let run jobs =
    let r = result_of ~jobs "pcr" in
    let defect = List.hd (Mfb_route.Rgrid.used_cells r.routing.grid) in
    Test_util.with_fake_sink (fun sink ->
        let o = Plan.repair ~config:cfg r ~defects:[ Defect.Cell defect ] in
        ( o.report,
          ( counter sink "ripped_up",
            counter sink "rerouted",
            counter sink "rebound",
            counter sink "fallbacks" ) ))
  in
  let report1, c1 = run 1 in
  let report2, c2 = run 2 in
  Alcotest.(check bool) "counters jobs-invariant" true (c1 = c2);
  Alcotest.(check bool) "reports jobs-invariant" true (report1 = report2);
  let ripped, rerouted, rebound, fallbacks = c1 in
  Alcotest.(check int) "ripped_up counter matches report"
    report1.Plan.ripped_up ripped;
  Alcotest.(check int) "rerouted counter matches report"
    (report1.Plan.rerouted + report1.Plan.rerouted_delayed)
    rerouted;
  Alcotest.(check int) "rebound counter matches report" report1.Plan.rebound
    rebound;
  Alcotest.(check int) "fallbacks counter matches report"
    report1.Plan.fallbacks fallbacks

(* --- The qcheck legality oracle --------------------------------------- *)

(* For any synthesized benchmark and any channel-cell defect, a repair
   that claims success must produce a schedule passing [Check.validate]
   and a routing that replays conflict-free (wash separation included)
   while avoiding the defect — [Plan.verify]'s full obligation. *)
let repair_oracle =
  let gen =
    QCheck2.Gen.pair
      (QCheck2.Gen.oneofl [ "pcr"; "ivd" ])
      QCheck2.Gen.(int_bound 10_000)
  in
  qtest ~count:20 "repair legality oracle" gen (fun (name, salt) ->
      let r = Lazy.force (if name = "pcr" then pcr else ivd) in
      let cells = Mfb_route.Rgrid.used_cells r.routing.grid in
      let defect = List.nth cells (salt mod List.length cells) in
      let defects = [ Defect.Cell defect ] in
      let o = Plan.repair ~config:cfg r ~defects in
      if o.report.survived then Plan.verify ~config:cfg ~defects o = []
      else o.report.failed > 0)

let suites =
  [
    ( "repair.defect",
      [
        Alcotest.test_case "plan JSON roundtrip" `Quick test_plan_roundtrip;
        Alcotest.test_case "generators deterministic" `Quick
          test_generators_deterministic;
      ] );
    ( "repair.plan",
      [
        Alcotest.test_case "unused cell is a no-op" `Quick
          test_unused_cell_noop;
        Alcotest.test_case "single-cell repair is legal" `Quick
          test_single_cell_repair_legal;
        Alcotest.test_case "defect under a cached fluid" `Quick
          test_cached_fluid_cell_repair;
        Alcotest.test_case "component fault rebinds" `Quick
          test_component_fault_rebinds;
        Alcotest.test_case "footprint cell lifts to component fault" `Quick
          test_footprint_cell_lifts_to_component;
        repair_oracle;
      ] );
    ( "repair.determinism",
      [
        Alcotest.test_case "report bytes stable across runs and jobs"
          `Quick test_repair_deterministic_and_jobs_invariant;
        Alcotest.test_case "counters jobs-invariant" `Quick
          test_repair_counters_jobs_invariant;
      ] );
  ]
