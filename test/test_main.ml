(* Entry point aggregating all per-library suites, plus direct tests of
   the Domain worker pool that everything parallel is built on. *)

module Pool = Mfb_util.Pool

exception Boom of int

let test_pool_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map order at jobs=%d" jobs)
        (List.map (fun x -> x * x) xs)
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_init_matches_array_init () =
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "init at jobs=%d" jobs)
        (Array.init 33 (fun i -> (i * 7) mod 13))
        (Pool.init ~jobs 33 (fun i -> (i * 7) mod 13)))
    [ 1; 3; 8 ]

let test_pool_propagates_worker_exception () =
  (* The failure must escape the worker domains, and deterministically:
     the lowest failing index wins no matter which domain hit it. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raise at jobs=%d" jobs)
        (Boom 17)
        (fun () ->
          ignore
            (Pool.init ~jobs 64 (fun i ->
                 if i >= 17 then raise (Boom i) else i))))
    [ 1; 2; 4 ]

let test_pool_empty_and_validation () =
  Alcotest.(check (list int)) "empty map" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check int) "empty init" 0 (Array.length (Pool.init ~jobs:4 0 succ));
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.init: jobs < 1")
    (fun () -> ignore (Pool.init ~jobs:0 3 succ));
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check bool) "default_jobs <= 8" true (Pool.default_jobs () <= 8)

(* --- degenerate shapes: jobs > n, n = 0, n = 1 --- *)

module Telemetry = Mfb_util.Telemetry

let worker_spans sink =
  List.length
    (List.filter
       (fun (e : Telemetry.event) ->
         e.Telemetry.cat = "pool"
         && e.Telemetry.name = "worker"
         &&
         match e.Telemetry.ph with Telemetry.Complete _ -> true | _ -> false)
       (Telemetry.events sink))

let test_pool_jobs_exceed_tasks () =
  (* More jobs than tasks must clamp to one domain per task: exactly
     min(jobs, n) worker tracks, never eight domains for two tasks. *)
  Test_util.with_fake_sink (fun sink ->
      Alcotest.(check (list int))
        "results" [ 0; 2 ]
        (Pool.map ~jobs:8 (fun x -> 2 * x) [ 0; 1 ]);
      Alcotest.(check int) "worker tracks" 2 (worker_spans sink));
  (* and without telemetry it is still just correct *)
  Alcotest.(check (list int))
    "no-sink results" [ 1; 2; 3 ]
    (Pool.map ~jobs:100 succ [ 0; 1; 2 ])

let test_pool_no_tasks_no_domains () =
  Test_util.with_fake_sink (fun sink ->
      Alcotest.(check (list int)) "map []" [] (Pool.map ~jobs:4 succ []);
      Alcotest.(check int) "init 0" 0 (Array.length (Pool.init ~jobs:4 0 succ));
      Alcotest.(check int) "no events at all" 0
        (List.length (Telemetry.events sink)))

let noisy_task i =
  Telemetry.incr ~cat:"t" "task.count";
  Telemetry.observe ~cat:"t" "task.val" (float_of_int i);
  2 * i

let test_pool_single_task_matches_fast_path () =
  (* jobs > 1 with one task takes the sequential fast path; the whole
     event stream — collector tree, spans, fake-clock timestamps — must
     be indistinguishable from jobs = 1. *)
  let run jobs =
    Test_util.with_fake_sink (fun sink ->
        ignore (Pool.init ~jobs 1 noisy_task);
        (Telemetry.events sink, Telemetry.metrics sink))
  in
  let events1, metrics1 = run 1 in
  let events8, metrics8 = run 8 in
  Alcotest.(check bool) "event streams equal" true (events1 = events8);
  Alcotest.(check bool) "metrics equal" true (metrics1 = metrics8);
  Alcotest.(check int) "no worker tracks" 0
    (List.length
       (List.filter (fun (e : Telemetry.event) -> e.Telemetry.cat = "pool")
          events8))

let test_pool_metrics_jobs_invariant_degenerate () =
  (* Aggregates must not depend on jobs even when jobs > n. *)
  let run jobs =
    Test_util.with_fake_sink (fun sink ->
        ignore (Pool.init ~jobs 3 noisy_task);
        Telemetry.metrics sink)
  in
  let m1 = run 1 in
  Alcotest.(check bool) "jobs=5 aggregates" true (m1 = run 5);
  Alcotest.(check bool) "jobs=3 aggregates" true (m1 = run 3)

let pool_suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "map preserves input order" `Quick
          test_pool_map_preserves_order;
        Alcotest.test_case "init matches Array.init" `Quick
          test_pool_init_matches_array_init;
        Alcotest.test_case "propagates worker exceptions" `Quick
          test_pool_propagates_worker_exception;
        Alcotest.test_case "empty inputs and validation" `Quick
          test_pool_empty_and_validation;
        Alcotest.test_case "jobs exceeding tasks clamps domains" `Quick
          test_pool_jobs_exceed_tasks;
        Alcotest.test_case "no tasks spawns no domains" `Quick
          test_pool_no_tasks_no_domains;
        Alcotest.test_case "single task matches fast path" `Quick
          test_pool_single_task_matches_fast_path;
        Alcotest.test_case "degenerate aggregates jobs-invariant" `Quick
          test_pool_metrics_jobs_invariant_degenerate;
      ] );
  ]

let () =
  Alcotest.run "microflow"
    (pool_suites @ Test_util.suites @ Test_bioassay.suites
   @ Test_component.suites @ Test_schedule.suites @ Test_place.suites
   @ Test_route.suites @ Test_perf_equiv.suites @ Test_core.suites
   @ Test_control.suites @ Test_sim.suites @ Test_server.suites
   @ Test_cluster.suites @ Test_net.suites @ Test_repair.suites
   @ Test_warm.suites @ Test_parallel.suites)
