The TCP serving tier speaks the identical line protocol over sockets.
A background listener on an ephemeral port (--tcp 0) writes its bound
port to a file once listening; the client subcommand picks it up,
relays stdin request lines and prints one reply line each.  The reply
bytes match the stdio transcripts in serve.t exactly: same keys, same
payloads, same structured errors.

  $ ../../bin/dcsa_synth.exe serve --tcp 0 --port-file port --max-conns 8 2>serve.err &
  $ SERVE_PID=$!

  $ ../../bin/dcsa_synth.exe client --port-file port <<'EOF'
  > {"op":"submit","id":"r1","benchmark":"PCR"}
  > {"op":"result","id":"r1"}
  > EOF
  {"ok":true,"op":"submit","id":"r1","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r1","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}

A second connection shares the cache: resubmitting the same benchmark
under a new id is answered with the same key and byte-identical
payload, and the final stats count one computation for two submissions.

  $ ../../bin/dcsa_synth.exe client --port-file port <<'EOF'
  > {"op":"submit","id":"r2","benchmark":"PCR"}
  > {"op":"result","id":"r2"}
  > EOF
  {"ok":true,"op":"submit","id":"r2","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"r2","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}

Oversized frames get the same structured reply as the stdio path, and
the connection resyncs at the next newline — the stats request after
the huge line is answered normally.

  $ { head -c 1100000 /dev/zero | tr '\0' 'a'; echo; printf '{"op":"stats"}\n'; } \
  >   | ../../bin/dcsa_synth.exe client --port-file port \
  >   | sed -e 's/\("submitted":[0-9]*\).*/\1/' -e 's/\("message":"[^"]*"\).*/\1/'
  {"ok":false,"op":"error","message":"input line too long: 1100000 bytes exceeds the 1048576-byte limit"
  {"ok":true,"op":"stats","stats":{"tick":1,"submitted":2

A shutdown from any client drains and stops the listener; its Goodbye
carries the shared totals.

  $ ../../bin/dcsa_synth.exe client --port-file port <<'EOF'
  > {"op":"shutdown"}
  > EOF
  {"ok":true,"op":"shutdown","stats":{"tick":1,"submitted":2,"computed":1,"cache":{"capacity":128,"entries":1,"hits":1,"misses":1,"evictions":0},"queue":{"depth":64,"queued":0},"shed":{"deadline":0,"displaced":0},"rejected":0,"latency":{"count":2,"sum":1.0,"min":0.0,"max":1.0,"p50":0.0,"p95":1.189207115,"p99":1.189207115},"queue_wait":{"count":1,"sum":0.0,"min":0.0,"max":0.0,"p50":0.0,"p95":0.0,"p99":0.0},"jobs":1,"config":{"tc":2.0,"we":10.0,"beta":0.6,"gamma":0.4,"sa":{"t0":10000.0,"t_min":1.0,"alpha":0.9,"i_max":150},"sa_restarts":1,"seed":42,"backend":"heuristic","exact_fuel":200000},"totals":{"cache":{"hits":1,"misses":1,"evictions":0},"queue":{"submitted":2,"computed":1,"shed":0,"rejected":0},"cluster":{"dispatched":0,"retries":0,"degraded":0,"respawns":0}}}}

  $ wait $SERVE_PID

The stdio path is untouched by the TCP tier: no --tcp flag, no socket,
bytes as in serve.t.

  $ ../../bin/dcsa_synth.exe serve <<'EOF'
  > {"op":"submit","id":"s1","benchmark":"PCR"}
  > {"op":"result","id":"s1"}
  > EOF
  {"ok":true,"op":"submit","id":"s1","key":"5a1cf9d38af9fd6b"}
  {"ok":true,"op":"result","id":"s1","key":"5a1cf9d38af9fd6b","result":{"benchmark":"PCR","flow":"ours","execution_time_s":22.2,"utilization":0.829800388624,"channel_length_mm":70.0,"channel_cache_time_s":0.0,"channel_wash_time_s":0.0,"component_wash_time_s":9.12061034012}}
