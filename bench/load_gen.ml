(* Load generator for the synthesis service.

   Three modes; the first two share one seeded workload (a mix of
   repeated "hot" and fresh requests — a pure function of --seed, so two
   runs replay byte-identical request scripts):

   In-process (default): replays the script against two in-process
   servers — one caching, one with the cache disabled — and reports
   throughput, cache hit rate, p50/p95 request latency, and
   shed/rejection counts.

   TCP (--connect HOST:PORT or --port-file FILE): open-loop multi-client
   generator against a running 'dcsa_synth serve --tcp' listener.
   --clients concurrent connections share a seeded Poisson arrival
   schedule (aggregate --rate req/s); requests fire at their scheduled
   instants regardless of completions, so queueing delay is measured,
   not hidden.  Reports per-client and aggregate p50/p95/p99, gates them
   against --slo-p95/--slo-p99, classifies transport errors
   (refused/reset/timeout), verifies that every client observed
   byte-identical payloads per job, and exits nonzero on any SLO breach
   or connection error.

   Edit-sequence (--edits N): a seeded chain of single-op duration
   edits on one inline assay, replayed against a similarity-enabled
   server (warm starts), the same server at --jobs 2 (warm-payload
   determinism), and a similarity-free server (cold baseline).  Reports
   the warm-vs-cold speedup next to near-hit / fallback counts, gates
   speedup >= --edit-slo, payload divergences = 0 across --jobs, and
   warm quality within the server's delta of cold, and exits nonzero
   on any breach.

   Run with: dune exec bench/load_gen.exe -- [--requests N] [--repeat F]
             [--hot K] [--jobs N] [--seed S] [--out FILE]
             [--connect HOST:PORT | --port-file FILE] [--clients N]
             [--rate R] [--slo-p95 MS] [--slo-p99 MS] [--req-timeout S]
             [--shutdown]
             [--edits N] [--edit-ops K] [--edit-slo X]

   Writes the machine-readable summary to BENCH_server.json (or --out);
   the TCP and edit modes merge a "tcp" / "edit" section into an
   existing summary. *)

module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Client = Mfb_server.Client

let arg_value name default parse =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with Some v -> v | None -> default
    else scan (i + 1)
  in
  scan 0

let requests = arg_value "--requests" 240 int_of_string_opt
let repeat_fraction = arg_value "--repeat" 0.9 float_of_string_opt
let hot_set = arg_value "--hot" 8 int_of_string_opt
let jobs = arg_value "--jobs" 1 int_of_string_opt
let seed = arg_value "--seed" 7 int_of_string_opt
let out_file = arg_value "--out" "BENCH_server.json" (fun s -> Some s)

(* TCP-mode knobs; either --connect or --port-file selects the mode. *)
let connect_spec = arg_value "--connect" "" (fun s -> Some s)
let port_file = arg_value "--port-file" "" (fun s -> Some s)
let clients = arg_value "--clients" 4 int_of_string_opt
let rate = arg_value "--rate" 50.0 float_of_string_opt
let slo_p95 = arg_value "--slo-p95" 2000.0 float_of_string_opt
let slo_p99 = arg_value "--slo-p99" 5000.0 float_of_string_opt
let req_timeout = arg_value "--req-timeout" 30.0 float_of_string_opt
let do_shutdown = Array.exists (fun a -> a = "--shutdown") Sys.argv
let tcp_mode = connect_spec <> "" || port_file <> ""

(* Edit-sequence knobs; --edits > 0 selects the mode. *)
let edits = arg_value "--edits" 0 int_of_string_opt
let edit_ops = arg_value "--edit-ops" 12 int_of_string_opt
let edit_slo = arg_value "--edit-slo" 1.5 float_of_string_opt
let edit_mode = edits > 0

(* The request script: each entry is the seed override identifying a
   distinct synthesis job.  Hot requests draw from [hot_set] fixed
   seeds; fresh requests get a unique seed each.  Generated once, then
   replayed verbatim against both servers. *)
let script =
  let rng = Random.State.make [| seed |] in
  let fresh = ref 0 in
  List.init requests (fun _ ->
      if Random.State.float rng 1.0 < repeat_fraction then
        1000 + Random.State.int rng hot_set
      else begin
        incr fresh;
        100_000 + !fresh
      end)

let submit_of ~id ~job_seed =
  P.Submit
    {
      id;
      priority = 0;
      deadline = None;
      flow = `Ours;
      spec = P.Benchmark "PCR";
      overrides =
        { P.no_overrides with o_seed = Some job_seed };
      trace = None;
    }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* Replay the script: submit + result per entry, recording per-request
   latency both client-side (gettimeofday around the round trip) and
   server-side (the wall-clock latency histogram).  Returns
   (elapsed_s, latencies_ms, payloads, stats, server_latency). *)
let replay ~cache_capacity =
  let server =
    Server.create
      {
        Server.default_config with
        jobs;
        cache_capacity;
        queue_depth = 64;
        clock = `Wall;
      }
  in
  let client = Client.in_process server in
  let latencies = Array.make requests 0.0 in
  let payloads = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i job_seed ->
      let id = Printf.sprintf "q%d" i in
      let r0 = Unix.gettimeofday () in
      (match Client.call client (submit_of ~id ~job_seed) with
       | Ok (P.Submitted _) -> ()
       | Ok other ->
         fail "request %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "request %s: %s" id e);
      (match Client.call client (P.Result id) with
       | Ok (P.Job_result { result; _ }) ->
         payloads := Json.to_string result :: !payloads
       | Ok other ->
         fail "result %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "result %s: %s" id e);
      latencies.(i) <- (Unix.gettimeofday () -. r0) *. 1e3)
    script;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Server.stats_json server in
  let hist = Server.latency_histogram server in
  if Mfb_util.Histogram.count hist <> requests then
    fail "server latency histogram recorded %d of %d requests"
      (Mfb_util.Histogram.count hist) requests;
  (elapsed, latencies, List.rev !payloads, stats,
   Mfb_util.Histogram.snapshot_json hist)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let rec int_at path json =
  match path with
  | [] -> (match json with Json.Int i -> i | _ -> 0)
  | k :: rest ->
    (match Json.member k json with Some j -> int_at rest j | None -> 0)

let summary name (elapsed, latencies, _payloads, stats, server_latency) =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let hits = int_at [ "cache"; "hits" ] stats in
  let misses = int_at [ "cache"; "misses" ] stats in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let throughput = float_of_int requests /. elapsed in
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99
  and lmax = sorted.(Array.length sorted - 1) in
  let computed = int_at [ "computed" ] stats in
  let shed =
    int_at [ "shed"; "deadline" ] stats + int_at [ "shed"; "displaced" ] stats
  in
  let rejected = int_at [ "rejected" ] stats in
  Printf.printf
    "%-10s %6.1f req/s   hit rate %5.1f%%   p50 %6.2f ms   p95 %6.2f ms   \
     p99 %6.2f ms   max %6.2f ms   computed %3d   shed %d   rejected %d\n"
    name throughput (100.0 *. hit_rate) p50 p95 p99 lmax computed shed
    rejected;
  Json.Obj
    [
      ("elapsed_s", Json.Float elapsed);
      ("throughput_rps", Json.Float throughput);
      ("hit_rate", Json.Float hit_rate);
      ("p50_ms", Json.Float p50);
      ("p95_ms", Json.Float p95);
      ("p99_ms", Json.Float p99);
      ("max_ms", Json.Float lmax);
      ("computed", Json.Int computed);
      ("shed", Json.Int shed);
      ("rejected", Json.Int rejected);
      (* Server-side view of the same distribution, from the rolling
         log-bucketed histogram — cross-checks the client percentiles
         (bucket resolution ~19%, so expect agreement, not equality). *)
      ("server_latency", server_latency);
    ]

(* ---------------- TCP mode ---------------- *)

type err_class = Refused | Reset | Timeout | Other

type req_state =
  | Waiting
  | Done of float  (* latency, ms *)
  | Shed           (* structured admission-control reject: not an error *)
  | Failed of err_class

type tcp_conn = {
  c_id : int;
  mutable c_fd : Unix.file_descr option;  (* None once dead *)
  c_frame : Mfb_net.Frame.t;
  (* request indices awaiting replies, in wire order; the flag marks
     the Job_result (vs the Submitted ack) expectation *)
  c_expect : (int * bool) Queue.t;
  mutable c_fail : err_class;  (* classifies requests sent after death *)
}

let resolve_endpoint () =
  if connect_spec <> "" then begin
    match String.rindex_opt connect_spec ':' with
    | Some i ->
      let host = String.sub connect_spec 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      (match
         int_of_string_opt
           (String.sub connect_spec (i + 1)
              (String.length connect_spec - i - 1))
       with
       | Some p -> (host, p)
       | None -> fail "--connect: bad port in %S" connect_spec)
    | None ->
      (match int_of_string_opt connect_spec with
       | Some p -> ("127.0.0.1", p)
       | None -> fail "--connect expects HOST:PORT or PORT")
  end
  else
    match Mfb_net.Tcp_client.wait_port_file port_file with
    | Ok p -> ("127.0.0.1", p)
    | Error e -> fail "%s" e

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let err_name = function
  | Refused -> "refused"
  | Reset -> "reset"
  | Timeout -> "timeout"
  | Other -> "other"

let quantiles_json latencies =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  if Array.length sorted = 0 then
    Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int (Array.length sorted));
        ("p50_ms", Json.Float (percentile sorted 0.50));
        ("p95_ms", Json.Float (percentile sorted 0.95));
        ("p99_ms", Json.Float (percentile sorted 0.99));
        ("max_ms", Json.Float sorted.(Array.length sorted - 1));
      ]

(* ---------------- Edit-sequence mode ---------------- *)

(* A seeded chain assay: [edit_ops] alternating mix/heat ops on a path
   graph, plus [edits] single-op duration edits.  Each edit bumps one
   random op's duration by 1..3 (wrapping within 3..9), so consecutive
   requests are never byte-identical — no exact-cache hit — yet differ
   in a single op label, inside the server's default similarity
   threshold.  The whole sequence is a pure function of --seed. *)
let edit_texts () =
  let rng = Random.State.make [| seed; 0xed17 |] in
  let durs = Array.init edit_ops (fun _ -> 3 + Random.State.int rng 7) in
  let render () =
    let b = Buffer.create 512 in
    Buffer.add_string b "assay \"edit-chain\"\n";
    Buffer.add_string b "fluid a 4e-7\nfluid b 1e-6\n";
    Array.iteri
      (fun i d ->
        Buffer.add_string b
          (Printf.sprintf "op %d %s %d %s\n" i
             (if i mod 2 = 0 then "mix" else "heat")
             d
             (if i mod 2 = 0 then "a" else "b")))
      durs;
    for i = 0 to edit_ops - 2 do
      Buffer.add_string b (Printf.sprintf "edge %d %d\n" i (i + 1))
    done;
    Buffer.contents b
  in
  let base = render () in
  let steps = ref [] in
  for _ = 1 to edits do
    let v = Random.State.int rng edit_ops in
    durs.(v) <- 3 + ((durs.(v) - 3 + 1 + Random.State.int rng 3) mod 7);
    steps := render () :: !steps
  done;
  base :: List.rev !steps

let submit_edit ~id ~text =
  P.Submit
    {
      id;
      priority = 0;
      deadline = None;
      flow = `Ours;
      spec = P.Assay { text; alloc = None };
      overrides = P.no_overrides;
      trace = None;
    }

(* Replay the edit sequence; returns (elapsed_s, latencies_ms, payloads,
   near_hits, warm_fallbacks). *)
let replay_edits ~similarity ~jobs texts =
  let server =
    Server.create
      {
        Server.default_config with
        jobs;
        cache_capacity = 128;
        queue_depth = 64;
        clock = `Wall;
        similarity;
      }
  in
  let client = Client.in_process server in
  let latencies = Array.make (List.length texts) 0.0 in
  let payloads = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i text ->
      let id = Printf.sprintf "e%d" i in
      let r0 = Unix.gettimeofday () in
      (match Client.call client (submit_edit ~id ~text) with
       | Ok (P.Submitted _) -> ()
       | Ok other ->
         fail "edit %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "edit %s: %s" id e);
      (match Client.call client (P.Result id) with
       | Ok (P.Job_result { result; _ }) ->
         payloads := Json.to_string result :: !payloads
       | Ok other ->
         fail "edit result %s: unexpected response %s" id
           (P.response_to_line other)
       | Error e -> fail "edit result %s: %s" id e);
      latencies.(i) <- (Unix.gettimeofday () -. r0) *. 1e3)
    texts;
  let elapsed = Unix.gettimeofday () -. t0 in
  let near, fallbacks = Server.near_hit_counts server in
  (elapsed, latencies, List.rev !payloads, near, fallbacks)

let exec_time_of payload =
  match Json.of_string payload with
  | Ok j ->
    (match Json.member "execution_time_s" j with
     | Some (Json.Float f) -> f
     | Some (Json.Int i) -> float_of_int i
     | _ -> Float.nan)
  | Error _ -> Float.nan

let run_edits () =
  if edits < 1 then fail "--edits must be >= 1";
  if edit_ops < 2 then fail "--edit-ops must be >= 2";
  Printf.printf
    "edit-sequence workload: base + %d single-op edits over a %d-op chain, \
     seed=%d\n\n"
    edits edit_ops seed;
  let texts = edit_texts () in
  let we, wl, wp, near, fb = replay_edits ~similarity:true ~jobs:1 texts in
  let _, _, wp2, near2, fb2 = replay_edits ~similarity:true ~jobs:2 texts in
  let ce, cl, cp, _, _ = replay_edits ~similarity:false ~jobs:1 texts in
  (* Determinism: warm decisions and payload bytes must not depend on
     the worker-pool width. *)
  let divergences =
    List.fold_left2 (fun a p q -> if p = q then a else a + 1) 0 wp wp2
    + if (near, fb) = (near2, fb2) then 0 else 1
  in
  (* Quality: every warm answer must land within the server's delta of
     the cold answer for the same request — the bench holds both payload
     sets, so the warm-start proof obligation is re-checked end to end
     rather than trusted. *)
  let delta = Server.default_config.Server.warm_delta in
  let breaches = ref 0 in
  List.iter2
    (fun p q ->
      let w = exec_time_of p and c = exec_time_of q in
      if (not (Float.is_finite w)) || w > (c *. (1. +. delta)) +. 1e-9 then
        incr breaches)
    wp cp;
  let speedup = ce /. we in
  let pq l p =
    let s = Array.copy l in
    Array.sort compare s;
    percentile s p
  in
  Printf.printf
    "warm       %6.2f s   p50 %6.2f ms   p95 %6.2f ms   near-hits %d   \
     fallbacks %d\n"
    we (pq wl 0.50) (pq wl 0.95) near fb;
  Printf.printf "cold       %6.2f s   p50 %6.2f ms   p95 %6.2f ms\n" ce
    (pq cl 0.50) (pq cl 0.95);
  let pass = divergences = 0 && !breaches = 0 && near > 0 && speedup >= edit_slo in
  Printf.printf
    "warm speedup over cold: %.2fx (SLO >= %.2fx)   payload divergences \
     (--jobs 1 vs 2): %d   quality breaches (delta %.2f): %d   %s\n"
    speedup edit_slo divergences delta !breaches
    (if pass then "PASS" else "FAIL");
  let run_json elapsed lats =
    Json.Obj
      [ ("elapsed_s", Json.Float elapsed); ("latency", quantiles_json lats) ]
  in
  let edit_json =
    Json.Obj
      [
        ("edits", Json.Int edits);
        ("ops", Json.Int edit_ops);
        ("seed", Json.Int seed);
        ("near_hits", Json.Int near);
        ("warm_fallbacks", Json.Int fb);
        ("warm", run_json we wl);
        ("cold", run_json ce cl);
        ("speedup", Json.Float speedup);
        ("speedup_slo", Json.Float edit_slo);
        ("payload_divergences", Json.Int divergences);
        ("quality_delta", Json.Float delta);
        ("quality_breaches", Json.Int !breaches);
        ("pass", Json.Bool pass);
      ]
  in
  (* merge the edit section into an existing summary document *)
  let doc =
    let existing =
      if Sys.file_exists out_file then
        match
          Json.of_string
            (In_channel.with_open_text out_file In_channel.input_all)
        with
        | Ok (Json.Obj fields) ->
          Some (List.filter (fun (k, _) -> k <> "edit") fields)
        | Ok _ | Error _ -> None
      else None
    in
    Json.Obj
      ((match existing with Some fields -> fields | None -> [])
      @ [ ("edit", edit_json) ])
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file;
  if divergences > 0 then
    fail "warm payloads diverge across --jobs values (%d divergence(s))"
      divergences;
  if !breaches > 0 then
    fail "%d warm result(s) exceeded the quality delta %.2f" !breaches delta;
  if near = 0 then fail "similarity cache never warm-started a request";
  if speedup < edit_slo then
    fail "edit SLO breach: warm speedup %.2fx < %.2fx" speedup edit_slo

let run_tcp ~host ~port =
  let n = requests in
  let script = Array.of_list script in
  (* Open-loop Poisson arrivals: exponential inter-arrival gaps at the
     aggregate rate, seeded so reruns replay the same schedule. *)
  let arrivals = Array.make n 0.0 in
  let () =
    let rng = Random.State.make [| seed; 0x10ad |] in
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      let u = Random.State.float rng 1.0 in
      t := !t +. (-.Float.log (1.0 -. u)) /. rate;
      arrivals.(i) <- !t
    done
  in
  let state = Array.make n Waiting in
  let sent = Array.make n false in
  let payloads = Array.make n "" in
  let conns =
    Array.init clients (fun c_id ->
        let c =
          {
            c_id;
            c_fd = None;
            c_frame = Mfb_net.Frame.create ();
            c_expect = Queue.create ();
            c_fail = Refused;
          }
        in
        (match Mfb_net.Tcp_client.connect_fd ~host ~port () with
         | fd -> c.c_fd <- Some fd
         | exception Unix.Unix_error (e, _, _) ->
           Printf.eprintf "client %d: connect %s:%d: %s\n%!" c_id host port
             (Unix.error_message e));
        c)
  in
  let kill c cls =
    match c.c_fd with
    | None -> ()
    | Some fd ->
      c.c_fd <- None;
      c.c_fail <- cls;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Queue.iter
        (fun (i, _) -> if state.(i) = Waiting then state.(i) <- Failed cls)
        c.c_expect;
      Queue.clear c.c_expect
  in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let handle_line c line =
    match Queue.take_opt c.c_expect with
    | None -> ()  (* stray line after accounting closed; ignore *)
    | Some (i, want_result) ->
      (match (P.response_of_line line, want_result) with
       | Ok (P.Submitted _), false -> ()
       | Ok (P.Job_result { result; _ }), true ->
         if state.(i) = Waiting then begin
           state.(i) <- Done ((now () -. arrivals.(i)) *. 1e3);
           payloads.(i) <- Json.to_string result
         end
       | Ok (P.Rejected { reason; _ }), _ ->
         if state.(i) = Waiting then begin
           state.(i) <- Shed;
           Printf.eprintf "request %d shed: %s\n%!" i reason
         end;
         (* the paired Result expectation answers with an error line *)
         ()
       | Ok (P.Bad_request { message; _ }), _ ->
         if state.(i) = Waiting then state.(i) <- Failed Other;
         Printf.eprintf "request %d: bad request: %s\n%!" i message
       | Ok _, _ | Error _, _ ->
         if state.(i) = Waiting then state.(i) <- Failed Other)
  in
  let rbuf = Bytes.create 65536 in
  let read_conn c =
    match c.c_fd with
    | None -> ()
    | Some fd ->
      (match Unix.read fd rbuf 0 (Bytes.length rbuf) with
       | 0 -> kill c Reset
       | k ->
         Mfb_net.Frame.feed_bytes c.c_frame rbuf k;
         let rec drain () =
           match Mfb_net.Frame.next c.c_frame with
           | Some (Mfb_net.Frame.Line l) ->
             handle_line c l;
             drain ()
           | Some (Mfb_net.Frame.Oversized _) ->
             (match Queue.take_opt c.c_expect with
              | Some (i, _) ->
                if state.(i) = Waiting then state.(i) <- Failed Other
              | None -> ());
             drain ()
           | None -> ()
         in
         drain ()
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
         kill c Reset
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  let send i =
    sent.(i) <- true;
    let c = conns.(i mod clients) in
    match c.c_fd with
    | None -> state.(i) <- Failed c.c_fail
    | Some fd ->
      let id = Printf.sprintf "c%dq%d" c.c_id i in
      let lines =
        P.request_to_line (submit_of ~id ~job_seed:script.(i))
        ^ "\n"
        ^ P.request_to_line (P.Result id)
        ^ "\n"
      in
      (match write_all fd lines with
       | () ->
         Queue.add (i, false) c.c_expect;
         Queue.add (i, true) c.c_expect
       | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
         state.(i) <- Failed Reset;
         kill c Reset)
  in
  let next_send = ref 0 in
  let unresolved () =
    Array.exists (fun s -> s = Waiting) state || !next_send < n
  in
  let hard_deadline = arrivals.(n - 1) +. req_timeout +. 5.0 in
  while unresolved () && now () < hard_deadline do
    let t = now () in
    while !next_send < n && arrivals.(!next_send) <= t do
      send !next_send;
      incr next_send
    done;
    (* expire requests past their reply deadline *)
    for i = 0 to !next_send - 1 do
      if state.(i) = Waiting && sent.(i) && t -. arrivals.(i) > req_timeout
      then state.(i) <- Failed Timeout
    done;
    let until_next =
      if !next_send < n then arrivals.(!next_send) -. t else 0.25
    in
    let tmo = Float.max 0.0 (Float.min until_next 0.25) in
    let rfds =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if Queue.is_empty c.c_expect then None else c.c_fd)
    in
    if rfds = [] then Unix.sleepf (Float.max tmo 0.001)
    else begin
      match Unix.select rfds [] [] tmo with
      | rs, _, _ ->
        Array.iter
          (fun c ->
            match c.c_fd with
            | Some fd when List.mem fd rs -> read_conn c
            | _ -> ())
          conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (* anything still unresolved at the hard deadline is a timeout *)
  for i = 0 to n - 1 do
    if state.(i) = Waiting then state.(i) <- Failed Timeout
  done;
  let elapsed = now () in
  (* optional orderly shutdown through the first live connection,
     harvesting the server's final stats from its Goodbye *)
  let server_stats = ref Json.Null in
  if do_shutdown then begin
    match
      Array.to_list conns |> List.find_opt (fun c -> c.c_fd <> None)
    with
    | None -> prerr_endline "shutdown requested but no live connection"
    | Some c ->
      let fd = Option.get c.c_fd in
      (match write_all fd (P.request_to_line P.Shutdown ^ "\n") with
       | () ->
         let deadline = Unix.gettimeofday () +. 10.0 in
         let rec await () =
           if Unix.gettimeofday () < deadline then begin
             match Unix.select [ fd ] [] [] 0.25 with
             | [], _, _ -> await ()
             | _ ->
               (match Unix.read fd rbuf 0 (Bytes.length rbuf) with
                | 0 -> ()
                | k ->
                  Mfb_net.Frame.feed_bytes c.c_frame rbuf k;
                  let rec drain () =
                    match Mfb_net.Frame.next c.c_frame with
                    | Some (Mfb_net.Frame.Line l) ->
                      (match P.response_of_line l with
                       | Ok (P.Goodbye stats) -> server_stats := stats
                       | _ -> drain ())
                    | Some (Mfb_net.Frame.Oversized _) -> drain ()
                    | None -> await ()
                  in
                  drain ()
                | exception Unix.Unix_error _ -> ())
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
           end
         in
         await ()
       | exception Unix.Unix_error _ -> ());
      kill c Other
  end;
  Array.iter (fun c -> kill c Other) conns;
  (* cache transparency across clients: every completed request for the
     same job must have returned byte-identical payload *)
  let identical = ref true in
  let by_seed = Hashtbl.create 64 in
  Array.iteri
    (fun i p ->
      if p <> "" then begin
        let s = script.(i) in
        match Hashtbl.find_opt by_seed s with
        | None -> Hashtbl.add by_seed s p
        | Some q ->
          if p <> q then begin
            identical := false;
            Printf.eprintf "payload divergence on job seed %d (request %d)\n%!"
              s i
          end
      end)
    payloads;
  let errors = Hashtbl.create 4 in
  let bump_err c =
    Hashtbl.replace errors c
      (1 + Option.value ~default:0 (Hashtbl.find_opt errors c))
  in
  Array.iter (function Failed c -> bump_err c | _ -> ()) state;
  let err_count c = Option.value ~default:0 (Hashtbl.find_opt errors c) in
  let total_errors = List.fold_left ( + ) 0 (List.map err_count
    [ Refused; Reset; Timeout; Other ]) in
  let shed = Array.fold_left
    (fun a s -> if s = Shed then a + 1 else a) 0 state in
  let completed =
    Array.to_list state
    |> List.filter_map (function Done l -> Some l | _ -> None)
    |> Array.of_list
  in
  let agg_sorted = Array.copy completed in
  Array.sort compare agg_sorted;
  let agg_p95 =
    if Array.length agg_sorted = 0 then Float.infinity
    else percentile agg_sorted 0.95
  and agg_p99 =
    if Array.length agg_sorted = 0 then Float.infinity
    else percentile agg_sorted 0.99
  in
  let slo_pass =
    Array.length completed > 0 && agg_p95 <= slo_p95 && agg_p99 <= slo_p99
  in
  let per_client =
    List.init clients (fun c ->
        let lats =
          Array.to_list state
          |> List.filteri (fun i _ -> i mod clients = c)
          |> List.filter_map (function Done l -> Some l | _ -> None)
          |> Array.of_list
        in
        Json.Obj
          (("client", Json.Int c)
           :: (match quantiles_json lats with
               | Json.Obj fields -> fields
               | _ -> [])))
  in
  Printf.printf
    "tcp: %d clients at %.1f req/s aggregate against %s:%d\n" clients rate
    host port;
  Printf.printf
    "completed %d/%d in %.2f s   shed %d   errors: refused %d, reset %d, \
     timeout %d, other %d\n"
    (Array.length completed) n elapsed shed (err_count Refused)
    (err_count Reset) (err_count Timeout) (err_count Other);
  if Array.length agg_sorted > 0 then
    Printf.printf
      "aggregate p50 %6.2f ms   p95 %6.2f ms   p99 %6.2f ms   max %6.2f \
       ms   SLO(p95<=%.0f, p99<=%.0f) %s\n"
      (percentile agg_sorted 0.50) agg_p95 agg_p99
      agg_sorted.(Array.length agg_sorted - 1)
      slo_p95 slo_p99
      (if slo_pass then "PASS" else "FAIL");
  let tcp_json =
    Json.Obj
      [
        ("host", Json.String host);
        ("port", Json.Int port);
        ("clients", Json.Int clients);
        ("rate_rps", Json.Float rate);
        ("requests", Json.Int n);
        ("elapsed_s", Json.Float elapsed);
        ("completed", Json.Int (Array.length completed));
        ("shed", Json.Int shed);
        ( "errors",
          Json.Obj
            (List.map
               (fun c -> (err_name c, Json.Int (err_count c)))
               [ Refused; Reset; Timeout; Other ]) );
        ("aggregate", quantiles_json completed);
        ("per_client", Json.List per_client);
        ( "slo",
          Json.Obj
            [
              ("p95_ms", Json.Float slo_p95);
              ("p99_ms", Json.Float slo_p99);
              ("pass", Json.Bool slo_pass);
            ] );
        ("payloads_identical", Json.Bool !identical);
        ("server_stats", !server_stats);
      ]
  in
  (* merge the tcp section into an existing summary document *)
  let doc =
    let existing =
      if Sys.file_exists out_file then
        match Json.of_string (In_channel.with_open_text out_file
                                In_channel.input_all) with
        | Ok (Json.Obj fields) ->
          Some (List.filter (fun (k, _) -> k <> "tcp") fields)
        | Ok _ | Error _ -> None
      else None
    in
    Json.Obj
      ((match existing with Some fields -> fields | None -> [])
       @ [ ("tcp", tcp_json) ])
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file;
  if not !identical then fail "cross-client payload divergence";
  if total_errors > 0 then
    fail "%d transport error(s): refused %d, reset %d, timeout %d, other %d"
      total_errors (err_count Refused) (err_count Reset) (err_count Timeout)
      (err_count Other);
  if not slo_pass then
    fail "SLO breach: p95 %.2f ms (<= %.2f), p99 %.2f ms (<= %.2f)" agg_p95
      slo_p95 agg_p99 slo_p99

let () =
  if requests < 1 then fail "--requests must be >= 1";
  if edit_mode then begin
    if tcp_mode then fail "--edits is incompatible with TCP mode";
    run_edits ();
    exit 0
  end;
  if tcp_mode then begin
    if clients < 1 then fail "--clients must be >= 1";
    if rate <= 0.0 then fail "--rate must be positive";
    let host, port = resolve_endpoint () in
    run_tcp ~host ~port;
    exit 0
  end;
  Printf.printf
    "synthesis-service load generator: %d requests, %.0f%% repeat over %d \
     hot keys, jobs=%d, seed=%d\n\n"
    requests (100.0 *. repeat_fraction) hot_set jobs seed;
  let cached_run = replay ~cache_capacity:128 in
  let nocache_run = replay ~cache_capacity:0 in
  let cached = summary "cached" cached_run in
  let nocache = summary "no-cache" nocache_run in
  let (ce, _, cp, _, _) = cached_run and (ne, _, np, _, _) = nocache_run in
  if cp <> np then fail "cache transparency violated: payloads differ";
  Printf.printf "\ncache transparency: all %d payloads byte-identical\n"
    requests;
  let speedup = ne /. ce in
  Printf.printf "speedup (no-cache / cached elapsed): %.1fx\n" speedup;
  let doc =
    Json.Obj
      [
        ( "workload",
          Json.Obj
            [
              ("requests", Json.Int requests);
              ("repeat_fraction", Json.Float repeat_fraction);
              ("hot_set", Json.Int hot_set);
              ("jobs", Json.Int jobs);
              ("seed", Json.Int seed);
              ("benchmark", Json.String "PCR");
            ] );
        ("cached", cached);
        ("no_cache", nocache);
        ("speedup", Json.Float speedup);
        ("payloads_identical", Json.Bool (cp = np));
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file
