(* Load generator for the synthesis service.

   Replays a seeded mix of repeated ("hot") and fresh requests against
   two in-process servers — one caching, one with the cache disabled —
   and reports throughput, cache hit rate, p50/p95 request latency, and
   shed/rejection counts.  The workload is a pure function of --seed, so
   two runs replay byte-identical request scripts.

   Run with: dune exec bench/load_gen.exe -- [--requests N] [--repeat F]
             [--hot K] [--jobs N] [--seed S] [--out FILE]

   Writes the machine-readable summary to BENCH_server.json (or --out). *)

module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Client = Mfb_server.Client

let arg_value name default parse =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with Some v -> v | None -> default
    else scan (i + 1)
  in
  scan 0

let requests = arg_value "--requests" 240 int_of_string_opt
let repeat_fraction = arg_value "--repeat" 0.9 float_of_string_opt
let hot_set = arg_value "--hot" 8 int_of_string_opt
let jobs = arg_value "--jobs" 1 int_of_string_opt
let seed = arg_value "--seed" 7 int_of_string_opt
let out_file = arg_value "--out" "BENCH_server.json" (fun s -> Some s)

(* The request script: each entry is the seed override identifying a
   distinct synthesis job.  Hot requests draw from [hot_set] fixed
   seeds; fresh requests get a unique seed each.  Generated once, then
   replayed verbatim against both servers. *)
let script =
  let rng = Random.State.make [| seed |] in
  let fresh = ref 0 in
  List.init requests (fun _ ->
      if Random.State.float rng 1.0 < repeat_fraction then
        1000 + Random.State.int rng hot_set
      else begin
        incr fresh;
        100_000 + !fresh
      end)

let submit_of ~id ~job_seed =
  P.Submit
    {
      id;
      priority = 0;
      deadline = None;
      flow = `Ours;
      spec = P.Benchmark "PCR";
      overrides =
        { P.no_overrides with o_seed = Some job_seed };
      trace = None;
    }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* Replay the script: submit + result per entry, recording per-request
   latency both client-side (gettimeofday around the round trip) and
   server-side (the wall-clock latency histogram).  Returns
   (elapsed_s, latencies_ms, payloads, stats, server_latency). *)
let replay ~cache_capacity =
  let server =
    Server.create
      {
        Server.default_config with
        jobs;
        cache_capacity;
        queue_depth = 64;
        clock = `Wall;
      }
  in
  let client = Client.in_process server in
  let latencies = Array.make requests 0.0 in
  let payloads = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i job_seed ->
      let id = Printf.sprintf "q%d" i in
      let r0 = Unix.gettimeofday () in
      (match Client.call client (submit_of ~id ~job_seed) with
       | Ok (P.Submitted _) -> ()
       | Ok other ->
         fail "request %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "request %s: %s" id e);
      (match Client.call client (P.Result id) with
       | Ok (P.Job_result { result; _ }) ->
         payloads := Json.to_string result :: !payloads
       | Ok other ->
         fail "result %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "result %s: %s" id e);
      latencies.(i) <- (Unix.gettimeofday () -. r0) *. 1e3)
    script;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Server.stats_json server in
  let hist = Server.latency_histogram server in
  if Mfb_util.Histogram.count hist <> requests then
    fail "server latency histogram recorded %d of %d requests"
      (Mfb_util.Histogram.count hist) requests;
  (elapsed, latencies, List.rev !payloads, stats,
   Mfb_util.Histogram.snapshot_json hist)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let rec int_at path json =
  match path with
  | [] -> (match json with Json.Int i -> i | _ -> 0)
  | k :: rest ->
    (match Json.member k json with Some j -> int_at rest j | None -> 0)

let summary name (elapsed, latencies, _payloads, stats, server_latency) =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let hits = int_at [ "cache"; "hits" ] stats in
  let misses = int_at [ "cache"; "misses" ] stats in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let throughput = float_of_int requests /. elapsed in
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99
  and lmax = sorted.(Array.length sorted - 1) in
  let computed = int_at [ "computed" ] stats in
  let shed =
    int_at [ "shed"; "deadline" ] stats + int_at [ "shed"; "displaced" ] stats
  in
  let rejected = int_at [ "rejected" ] stats in
  Printf.printf
    "%-10s %6.1f req/s   hit rate %5.1f%%   p50 %6.2f ms   p95 %6.2f ms   \
     p99 %6.2f ms   max %6.2f ms   computed %3d   shed %d   rejected %d\n"
    name throughput (100.0 *. hit_rate) p50 p95 p99 lmax computed shed
    rejected;
  Json.Obj
    [
      ("elapsed_s", Json.Float elapsed);
      ("throughput_rps", Json.Float throughput);
      ("hit_rate", Json.Float hit_rate);
      ("p50_ms", Json.Float p50);
      ("p95_ms", Json.Float p95);
      ("p99_ms", Json.Float p99);
      ("max_ms", Json.Float lmax);
      ("computed", Json.Int computed);
      ("shed", Json.Int shed);
      ("rejected", Json.Int rejected);
      (* Server-side view of the same distribution, from the rolling
         log-bucketed histogram — cross-checks the client percentiles
         (bucket resolution ~19%, so expect agreement, not equality). *)
      ("server_latency", server_latency);
    ]

let () =
  if requests < 1 then fail "--requests must be >= 1";
  Printf.printf
    "synthesis-service load generator: %d requests, %.0f%% repeat over %d \
     hot keys, jobs=%d, seed=%d\n\n"
    requests (100.0 *. repeat_fraction) hot_set jobs seed;
  let cached_run = replay ~cache_capacity:128 in
  let nocache_run = replay ~cache_capacity:0 in
  let cached = summary "cached" cached_run in
  let nocache = summary "no-cache" nocache_run in
  let (ce, _, cp, _, _) = cached_run and (ne, _, np, _, _) = nocache_run in
  if cp <> np then fail "cache transparency violated: payloads differ";
  Printf.printf "\ncache transparency: all %d payloads byte-identical\n"
    requests;
  let speedup = ne /. ce in
  Printf.printf "speedup (no-cache / cached elapsed): %.1fx\n" speedup;
  let doc =
    Json.Obj
      [
        ( "workload",
          Json.Obj
            [
              ("requests", Json.Int requests);
              ("repeat_fraction", Json.Float repeat_fraction);
              ("hot_set", Json.Int hot_set);
              ("jobs", Json.Int jobs);
              ("seed", Json.Int seed);
              ("benchmark", Json.String "PCR");
            ] );
        ("cached", cached);
        ("no_cache", nocache);
        ("speedup", Json.Float speedup);
        ("payloads_identical", Json.Bool (cp = np));
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file
