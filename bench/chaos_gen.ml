(* Chaos generator for the worker fleet.

   Replays one seeded request script against three servers — the
   in-process baseline (--fleet 0), a clean worker fleet, and the same
   fleet under a seeded fault schedule — then byte-compares every
   result payload across the three runs and reports throughput,
   p50/p95/max request latency, and the fleet's recovery counters
   (respawns, retries, degradations, per-kind fault counts).

   Both the request script and the fault plan are pure functions of
   --seed, so CI replays the identical chaos schedule from the seed
   alone.  Any payload divergence is a determinism bug and exits 1.

   Run from the repo root with:
     dune exec bench/chaos_gen.exe -- [--requests N] [--fleet N]
       [--seed S] [--rate F] [--timeout S] [--worker-bin PATH]
       [--out FILE]

   Writes the machine-readable summary to BENCH_cluster.json (or
   --out). *)

module Json = Mfb_util.Json
module P = Mfb_server.Protocol
module Server = Mfb_server.Server
module Client = Mfb_server.Client
module Cluster = Mfb_cluster.Cluster
module Fault = Mfb_cluster.Fault

let arg_value name default parse =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with Some v -> v | None -> default
    else scan (i + 1)
  in
  scan 0

let requests = arg_value "--requests" 24 int_of_string_opt
let fleet = arg_value "--fleet" 2 int_of_string_opt
let seed = arg_value "--seed" 7 int_of_string_opt
let rate = arg_value "--rate" 0.35 float_of_string_opt
let timeout = arg_value "--timeout" 10.0 float_of_string_opt
let out_file = arg_value "--out" "BENCH_cluster.json" (fun s -> Some s)

let worker_bin =
  arg_value "--worker-bin"
    (Filename.concat
       (Filename.dirname Sys.executable_name)
       "../bin/dcsa_synth.exe")
    (fun s -> Some s)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* The request script: PCR/IVD submissions with a small seed pool, so
   batches mix cache hits with fresh synthesis.  Pure function of
   --seed; replayed verbatim against all three servers. *)
let script =
  let rng = Random.State.make [| seed |] in
  List.init requests (fun _ ->
      let bench = if Random.State.bool rng then "PCR" else "IVD" in
      (bench, Random.State.int rng 6))

(* The fault plan: a guaranteed crash on slot 0's first job (so
   respawn/retry counters are provably non-zero on any non-empty
   script) plus a seeded draw over every (slot, job) pair.  Workers
   index faults per process life, so a respawned slot replays its
   schedule from job 0. *)
let plan =
  { Fault.worker = 0; job = 0; kind = Fault.Crash }
  :: Fault.generate ~seed ~workers:fleet ~max_job:4 ~rate ()

let submit_of ~id ~bench ~job_seed =
  P.Submit
    {
      id;
      priority = 0;
      deadline = None;
      flow = `Ours;
      spec = P.Benchmark bench;
      overrides =
        { P.no_overrides with o_seed = Some job_seed };
      trace = None;
    }

(* Replay the script: submit everything (batches of [batch] dispatch as
   the queue fills), then demand every result, timing each result
   round-trip.  Returns (elapsed_s, latencies_ms, payloads, cluster
   counters if any). *)
let replay ~cluster =
  let dispatch, extra_stats =
    match cluster with
    | None -> (None, None)
    | Some c ->
      ( Some (Cluster.dispatch c),
        Some (fun () -> [ ("cluster", Cluster.stats_json c) ]) )
  in
  let server =
    Server.create
      {
        Server.default_config with
        queue_depth = max 64 requests;
        dispatch;
        extra_stats;
      }
  in
  let client = Client.in_process server in
  let latencies = Array.make requests 0.0 in
  let payloads = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i (bench, job_seed) ->
      let id = Printf.sprintf "c%d" i in
      match Client.call client (submit_of ~id ~bench ~job_seed) with
      | Ok (P.Submitted _) -> ()
      | Ok other ->
        fail "submit %s: unexpected response %s" id (P.response_to_line other)
      | Error e -> fail "submit %s: %s" id e)
    script;
  List.iteri
    (fun i _ ->
      let id = Printf.sprintf "c%d" i in
      let r0 = Unix.gettimeofday () in
      (match Client.call client (P.Result id) with
       | Ok (P.Job_result { result; _ }) ->
         payloads := Json.to_string result :: !payloads
       | Ok other ->
         fail "result %s: unexpected response %s" id (P.response_to_line other)
       | Error e -> fail "result %s: %s" id e);
      latencies.(i) <- (Unix.gettimeofday () -. r0) *. 1e3)
    script;
  let elapsed = Unix.gettimeofday () -. t0 in
  let counters =
    match cluster with
    | None -> None
    | Some c -> Some (Cluster.stats_json c)
  in
  (elapsed, latencies, List.rev !payloads, counters)

let with_fleet ~plan f =
  let plan_file =
    if Fault.is_empty plan then None
    else begin
      let file = Filename.temp_file "chaos_plan" ".json" in
      Fault.to_file file plan;
      Some file
    end
  in
  let worker_argv slot =
    let base = [ worker_bin; "worker"; "--index"; string_of_int slot ] in
    let argv =
      match plan_file with
      | None -> base
      | Some file -> base @ [ "--fault-plan"; file ]
    in
    Array.of_list argv
  in
  let cluster =
    Cluster.create
      { (Cluster.default_config ~worker_argv ~size:fleet) with timeout }
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.stop cluster;
      Option.iter Sys.remove plan_file)
    (fun () -> f cluster)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let counter name json =
  match Json.member name json with Some (Json.Int i) -> i | _ -> 0

let summary name (elapsed, latencies, _payloads, counters) =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let throughput = float_of_int requests /. elapsed in
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and worst = sorted.(Array.length sorted - 1) in
  let recovery =
    match counters with
    | None -> []
    | Some json -> [ ("recovery", json) ]
  in
  (match counters with
   | None ->
     Printf.printf
       "%-12s %6.1f req/s   p50 %6.2f ms   p95 %6.2f ms   max %6.2f ms\n"
       name throughput p50 p95 worst
   | Some json ->
     Printf.printf
       "%-12s %6.1f req/s   p50 %6.2f ms   p95 %6.2f ms   max %6.2f ms   \
        respawns %d   retries %d   degraded %d\n"
       name throughput p50 p95 worst (counter "respawns" json)
       (counter "retries" json) (counter "degraded" json));
  Json.Obj
    ([
       ("elapsed_s", Json.Float elapsed);
       ("throughput_rps", Json.Float throughput);
       ("p50_ms", Json.Float p50);
       ("p95_ms", Json.Float p95);
       ("max_ms", Json.Float worst);
     ]
    @ recovery)

let () =
  if requests < 1 then fail "--requests must be >= 1";
  if fleet < 1 then fail "--fleet must be >= 1";
  if not (Sys.file_exists worker_bin) then
    fail "worker binary %s not found (build first, or pass --worker-bin)"
      worker_bin;
  Printf.printf
    "worker-fleet chaos generator: %d requests, fleet=%d, fault rate \
     %.0f%%, %d planned faults, seed=%d\n\n"
    requests fleet (100.0 *. rate) (List.length plan) seed;
  let baseline_run = replay ~cluster:None in
  let clean_run = with_fleet ~plan:Fault.empty (fun c -> replay ~cluster:(Some c)) in
  let chaos_run = with_fleet ~plan (fun c -> replay ~cluster:(Some c)) in
  let baseline = summary "baseline" baseline_run in
  let clean = summary "fleet-clean" clean_run in
  let chaos = summary "fleet-chaos" chaos_run in
  let (_, _, bp, _) = baseline_run
  and (_, _, cp, _) = clean_run
  and (_, _, xp, _) = chaos_run in
  if bp <> cp then
    fail "fleet transparency violated: clean-fleet payloads differ from \
          baseline";
  if bp <> xp then
    fail "fault transparency violated: chaos payloads differ from baseline";
  Printf.printf
    "\nfleet transparency: all %d payloads byte-identical across baseline \
     / clean / chaos\n"
    requests;
  (match chaos_run with
   | _, _, _, Some json ->
     let respawns = counter "respawns" json
     and retries = counter "retries" json in
     if respawns = 0 || retries = 0 then
       fail "chaos run showed no recovery (respawns=%d retries=%d): fault \
             plan did not fire"
         respawns retries
   | _ -> ());
  let doc =
    Json.Obj
      [
        ( "workload",
          Json.Obj
            [
              ("requests", Json.Int requests);
              ("fleet", Json.Int fleet);
              ("seed", Json.Int seed);
              ("fault_rate", Json.Float rate);
              ("planned_faults", Json.Int (List.length plan));
              ("fault_plan", Fault.to_json plan);
            ] );
        ("baseline", baseline);
        ("fleet_clean", clean);
        ("fleet_chaos", chaos);
        ("payloads_identical", Json.Bool (bp = cp && bp = xp));
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file
