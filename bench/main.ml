(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Fig. 8, Fig. 9), the ablations called out in
   DESIGN.md, a t_c sensitivity sweep, and Bechamel micro-benchmarks of
   the synthesis stages.

   Run with: dune exec bench/main.exe *)

module Flow = Mfb_core.Flow
module Baseline = Mfb_core.Baseline
module Config = Mfb_core.Config
module Suite = Mfb_core.Suite
module Result_ = Mfb_core.Result
module Report = Mfb_core.Report
module Table = Mfb_util.Table
module Stats = Mfb_util.Stats

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --jobs N on the command line; defaults to the host's recommended
   domain count.  Every parallel section is deterministic in the result,
   so the flag only moves wall-clock time. *)
let jobs =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else scan (i + 1)
  in
  match scan 0 with
  | Some j when j >= 1 -> j
  | Some _ | None -> Mfb_util.Pool.default_jobs ()

(* --trace FILE records telemetry over the whole harness run and writes
   a Chrome trace_event JSON (open in Perfetto; validate with
   'dcsa-synth trace FILE'). *)
let trace_file =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--trace" then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 0

let trace_sink =
  match trace_file with
  | None -> None
  | Some _ ->
    let sink = Mfb_util.Telemetry.make_sink () in
    Mfb_util.Telemetry.install sink;
    Some sink

let write_trace () =
  match trace_file, trace_sink with
  | Some path, Some sink ->
    Out_channel.with_open_text path (fun oc ->
        Mfb_util.Json.to_channel ~indent:1 oc
          (Mfb_util.Telemetry.to_chrome_json ~process_name:"dcsa-bench" sink));
    Printf.eprintf "wrote %s\n" path
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Table I + Figures 8 and 9                                          *)
(* ------------------------------------------------------------------ *)

let run_suite ?(jobs = jobs) config = Suite.run_pairs ~jobs ~config ()

let table1 pairs =
  section
    "Table I: execution time, resource utilization, channel length, CPU time";
  print_string (Report.table1 pairs)

let stage_timing pairs =
  section "Per-stage wall-clock vs CPU time (our flow)";
  print_string (Report.timing_table (List.map fst pairs))

(* ------------------------------------------------------------------ *)
(* Parallel scaling: wall-clock of the Table-I suite vs --jobs        *)
(* ------------------------------------------------------------------ *)

let parallel_scaling config =
  section
    (Printf.sprintf
       "Parallel scaling: Table-I suite wall-clock vs worker domains \
        (host recommends %d)"
       (Mfb_util.Pool.default_jobs ()));
  let measure jobs =
    let w0 = Unix.gettimeofday () and c0 = Sys.time () in
    let pairs = run_suite ~jobs config in
    (pairs, Unix.gettimeofday () -. w0, Sys.time () -. c0)
  in
  let _, wall1, cpu1 = measure 1 in
  let table =
    Table.create
      ~headers:[ "Jobs"; "Wall (s)"; "CPU (s)"; "Speedup"; "Efficiency" ]
  in
  Table.set_aligns table
    [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  let row jobs wall cpu =
    Table.add_row table
      [
        string_of_int jobs;
        Printf.sprintf "%.3f" wall;
        Printf.sprintf "%.3f" cpu;
        Printf.sprintf "%.2fx" (wall1 /. Float.max wall 1e-9);
        Printf.sprintf "%.0f%%"
          (100. *. wall1 /. (Float.max wall 1e-9 *. float_of_int jobs));
      ]
  in
  row 1 wall1 cpu1;
  List.iter
    (fun jobs ->
      let _, wall, cpu = measure jobs in
      row jobs wall cpu)
    (List.sort_uniq compare [ 2; 4; jobs ] |> List.filter (fun j -> j > 1));
  Table.print table;
  print_endline
    "(identical results at every row; only the wall-clock moves)"

let figures pairs =
  section "Figure 8 and Figure 9";
  print_string (Report.fig8 pairs);
  print_newline ();
  print_string (Report.fig9 pairs)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md A1-A3)                                        *)
(* ------------------------------------------------------------------ *)

let ablations config =
  section "Ablations: which ingredient buys what (averages over the suite)";
  let variants =
    [
      ( "full flow",
        fun (i : Suite.instance) -> Flow.run ~config i.graph i.allocation );
      ( "A1 no case-I binding",
        fun (i : Suite.instance) ->
          Flow.run ~config ~scheduler:`Earliest_ready i.graph i.allocation );
      ( "A2 uniform placement energy",
        fun (i : Suite.instance) ->
          Flow.run ~config ~placement_energy:`Uniform i.graph i.allocation );
      ( "A3 no router weight update",
        fun (i : Suite.instance) ->
          Flow.run ~config ~weight_update:false i.graph i.allocation );
      ( "A4 force-directed placer",
        fun (i : Suite.instance) ->
          Flow.run ~config ~placer:`Force_directed i.graph i.allocation );
      ( "A5 negotiated (PathFinder) router",
        fun (i : Suite.instance) ->
          Flow.run ~config ~router:`Negotiated i.graph i.allocation );
      ( "baseline BA",
        fun (i : Suite.instance) -> Baseline.run ~config i.graph i.allocation );
    ]
  in
  let table =
    Table.create
      ~headers:
        [ "Variant"; "Exec (s)"; "Util (%)"; "Channel (mm)"; "Cache (s)";
          "Chan wash (s)" ]
  in
  Table.set_aligns table
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
      Table.Right ];
  List.iter
    (fun (name, run) ->
      let results = List.map run (Suite.all ()) in
      let mean f = Stats.mean (List.map f results) in
      Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.execution_time));
          Printf.sprintf "%.1f" (100. *. mean (fun r -> r.Result_.utilization));
          Printf.sprintf "%.0f" (mean (fun r -> r.Result_.channel_length_mm));
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.channel_cache_time));
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.channel_wash_time));
        ])
    variants;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Sensitivity: transport-time constant t_c                           *)
(* ------------------------------------------------------------------ *)

let tc_sensitivity config =
  section
    "Sensitivity: transport-time constant t_c (mean over synthetic suite)";
  let synthetics =
    [ Suite.synthetic1 (); Suite.synthetic2 (); Suite.synthetic3 ();
      Suite.synthetic4 () ]
  in
  let table =
    Table.create
      ~headers:
        [ "t_c (s)"; "Exec ours"; "Exec BA"; "Imp (%)"; "Cache ours";
          "Cache BA" ]
  in
  List.iter
    (fun tc ->
      let cfg = { config with Config.tc } in
      let ours =
        List.map
          (fun (i : Suite.instance) -> Flow.run ~config:cfg i.graph i.allocation)
          synthetics
      in
      let ba =
        List.map
          (fun (i : Suite.instance) ->
            Baseline.run ~config:cfg i.graph i.allocation)
          synthetics
      in
      let mean field results = Stats.mean (List.map field results) in
      let exec_ours = mean (fun r -> r.Result_.execution_time) ours in
      let exec_ba = mean (fun r -> r.Result_.execution_time) ba in
      Table.add_row table
        [
          Printf.sprintf "%.1f" tc;
          Printf.sprintf "%.1f" exec_ours;
          Printf.sprintf "%.1f" exec_ba;
          Printf.sprintf "%.1f"
            (Stats.percent_improvement ~ours:exec_ours ~baseline:exec_ba);
          Printf.sprintf "%.1f"
            (mean (fun r -> r.Result_.channel_cache_time) ours);
          Printf.sprintf "%.1f"
            (mean (fun r -> r.Result_.channel_cache_time) ba);
        ])
    [ 1.0; 2.0; 4.0; 8.0 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* Parameter study: Eq. 4 weights beta/gamma                          *)
(* ------------------------------------------------------------------ *)

let beta_gamma_study config =
  section
    "Parameter study: Eq. 4 weights (beta concurrency vs gamma wash; the \
     paper uses 0.6/0.4) — suite means";
  let table =
    Table.create
      ~headers:
        [ "beta"; "gamma"; "Exec (s)"; "Channel (mm)"; "Cache (s)";
          "Chan wash (s)" ]
  in
  List.iter
    (fun (beta, gamma) ->
      let cfg = { config with Config.beta; gamma } in
      let results =
        List.map
          (fun (i : Suite.instance) -> Flow.run ~config:cfg i.graph i.allocation)
          (Suite.all ())
      in
      let mean f = Stats.mean (List.map f results) in
      Table.add_row table
        [
          Printf.sprintf "%.2f" beta;
          Printf.sprintf "%.2f" gamma;
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.execution_time));
          Printf.sprintf "%.0f" (mean (fun r -> r.Result_.channel_length_mm));
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.channel_cache_time));
          Printf.sprintf "%.1f" (mean (fun r -> r.Result_.channel_wash_time));
        ])
    [ (1.0, 0.0); (0.75, 0.25); (0.6, 0.4); (0.4, 0.6); (0.0, 1.0) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* Motivation: DCSA vs the dedicated storage unit (paper Fig. 1)      *)
(* ------------------------------------------------------------------ *)

let dedicated_comparison config =
  section
    "Motivation: DCSA vs dedicated storage unit (scheduling level, cap. 4)";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "DCSA exec"; "Dedicated exec"; "Slowdown (%)";
          "Trips"; "Residence (s)"; "Peak cells"; "Overflows" ]
  in
  Table.set_aligns table (Table.Left :: List.init 7 (fun _ -> Table.Right));
  List.iter
    (fun (inst : Suite.instance) ->
      let dcsa =
        Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.Config.tc inst.graph
          inst.allocation
      in
      let dedicated =
        Mfb_schedule.Dedicated_scheduler.schedule ~tc:config.tc ~capacity:4
          inst.graph inst.allocation
      in
      Table.add_row table
        [
          Mfb_bioassay.Seq_graph.name inst.graph;
          Printf.sprintf "%.1f" dcsa.makespan;
          Printf.sprintf "%.1f" dedicated.schedule.makespan;
          Printf.sprintf "%.1f"
            (Stats.percent_increase ~ours:dedicated.schedule.makespan
               ~baseline:dcsa.makespan);
          string_of_int dedicated.storage_trips;
          Printf.sprintf "%.1f" dedicated.storage_residence;
          string_of_int dedicated.peak_occupancy;
          string_of_int dedicated.capacity_overflows;
        ])
    (Suite.all ());
  Table.print table

(* ------------------------------------------------------------------ *)
(* Control layer: valves, actuation, Hamming-mux optimization         *)
(* ------------------------------------------------------------------ *)

let control_layer pairs =
  section
    "Control layer: valves, escape routing, and Hamming-distance \
     multiplexing (future work of the paper, per Wang et al.)";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Valves"; "Mux pins"; "Valve switches";
          "Toggles naive"; "Toggles greedy"; "Imp (%)"; "Escaped";
          "Line cells" ]
  in
  Table.set_aligns table (Table.Left :: List.init 8 (fun _ -> Table.Right));
  List.iter
    (fun ((ours : Result_.t), _) ->
      let valves = Mfb_control.Valve_map.of_routing ours.routing in
      let steps =
        Mfb_control.Actuation.steps ~tc:Config.default.tc valves ours.routing
      in
      let events = Mfb_control.Actuation.toggle_sequence steps in
      let n = max 1 (Mfb_control.Valve_map.count valves) in
      let naive =
        Mfb_control.Mux.switching_cost (Mfb_control.Mux.naive ~n) ~events
      in
      let optimized =
        Mfb_control.Mux.switching_cost
          (Mfb_control.Mux.greedy ~events ~n)
          ~events
      in
      let esc =
        Mfb_control.Escape.route ~width:ours.chip.width
          ~height:ours.chip.height valves
      in
      Table.add_row table
        [
          ours.benchmark;
          string_of_int (Mfb_control.Valve_map.count valves);
          string_of_int (Mfb_control.Mux.pins_needed n);
          string_of_int (Mfb_control.Actuation.valve_switching steps);
          string_of_int naive;
          string_of_int optimized;
          Printf.sprintf "%.1f"
            (Mfb_control.Mux.improvement_percent ~naive ~optimized);
          Printf.sprintf "%d/%d" (List.length esc.lines)
            (Mfb_control.Valve_map.count valves);
          string_of_int esc.total_length;
        ])
    pairs;
  Table.print table;
  print_endline
    "(Escaped x/y: control lines routed to edge pins without crossings at \
     2 control cells per flow cell; the rest need multiplexing — the point \
     of Wang et al.'s mux optimization.)"

(* ------------------------------------------------------------------ *)
(* Heuristic vs exact on small assays                                 *)
(* ------------------------------------------------------------------ *)

let exact_out = "BENCH_exact.json"

(* Runs the branch-and-bound oracle against the heuristic on every small
   instance, prints the gap table and emits BENCH_exact.json.  Returns
   true when (a) every in-fuel (optimal) instance has exact <= heuristic
   and (b) at least 3 instances populate the gap section — the CI
   exact-oracle gate. *)
let exact_comparison config =
  section "Scheduling quality: list-scheduling heuristic vs exact B&B";
  let small =
    let pcr = Suite.pcr () in
    let ivd = Suite.ivd () in
    [
      ("PCR", pcr.graph, pcr.allocation);
      ( "Fig2-example", Mfb_bioassay.Benchmarks.fig2_example (),
        Mfb_component.Allocation.of_vector (3, 1, 0, 1) );
    ]
    @ List.map
        (fun seed ->
          ( Printf.sprintf "tiny-%d" seed,
            Mfb_bioassay.Synthetic.generate
              ~name:(Printf.sprintf "tiny-%d" seed)
              { Mfb_bioassay.Synthetic.default_params with n_ops = 8; seed },
            Mfb_component.Allocation.of_vector (2, 2, 1, 1) ))
        [ 3; 17; 42 ]
    @ [ ("IVD", ivd.graph, ivd.allocation) ]
  in
  let rows =
    List.map
      (fun (name, g, alloc) ->
        let exact = Mfb_schedule.Exact.schedule ~tc:config.Config.tc g alloc in
        (name, Mfb_bioassay.Seq_graph.n_ops g, exact))
      small
  in
  let table =
    Table.create
      ~headers:
        [ "Instance"; "Ops"; "Heuristic (s)"; "Exact (s)"; "Gap (%)";
          "Optimal?"; "Nodes" ]
  in
  Table.set_aligns table (Table.Left :: List.init 6 (fun _ -> Table.Right));
  let gap (e : Mfb_schedule.Exact.t) =
    Stats.percent_increase ~ours:e.heuristic_makespan
      ~baseline:e.schedule.makespan
  in
  List.iter
    (fun (name, ops, (e : Mfb_schedule.Exact.t)) ->
      Table.add_row table
        [
          name;
          string_of_int ops;
          Printf.sprintf "%.1f" e.heuristic_makespan;
          Printf.sprintf "%.1f" e.schedule.makespan;
          Printf.sprintf "%.1f" (gap e);
          (if e.optimal then "yes" else "no");
          string_of_int e.explored;
        ])
    rows;
  Table.print table;
  let optimal_rows =
    List.filter (fun (_, _, (e : Mfb_schedule.Exact.t)) -> e.optimal) rows
  in
  let never_worse =
    List.for_all
      (fun (_, _, (e : Mfb_schedule.Exact.t)) ->
        e.schedule.makespan <= e.heuristic_makespan +. 1e-9)
      rows
  in
  let populated = List.length optimal_rows in
  Printf.printf
    "exact <= heuristic on every in-fuel instance: %s; gap section \
     populated for %d instances (target >= 3: %s)\n"
    (if never_worse then "yes" else "NO")
    populated
    (if populated >= 3 then "met" else "MISSED");
  let row_json (name, ops, (e : Mfb_schedule.Exact.t)) =
    Mfb_util.Json.Obj
      [
        ("name", Mfb_util.Json.String name);
        ("ops", Mfb_util.Json.Int ops);
        ("heuristic_s", Mfb_util.Json.Float e.heuristic_makespan);
        ("exact_s", Mfb_util.Json.Float e.schedule.makespan);
        ("gap_percent", Mfb_util.Json.Float (gap e));
        ("optimal", Mfb_util.Json.Bool e.optimal);
        ("truncated", Mfb_util.Json.Bool e.truncated);
        ("explored", Mfb_util.Json.Int e.explored);
        ("fuel", Mfb_util.Json.Int e.fuel);
      ]
  in
  let doc =
    Mfb_util.Json.Obj
      [
        ("fuel", Mfb_util.Json.Int Mfb_schedule.Exact.default_fuel);
        ("benchmarks", Mfb_util.Json.List (List.map row_json rows));
        ("gap_populated", Mfb_util.Json.Int populated);
        ("never_worse", Mfb_util.Json.Bool never_worse);
      ]
  in
  Out_channel.with_open_text exact_out (fun oc ->
      Mfb_util.Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" exact_out;
  never_worse && populated >= 3

(* ------------------------------------------------------------------ *)
(* Multi-start randomized list scheduling                             *)
(* ------------------------------------------------------------------ *)

let multistart_study config =
  section
    "Multi-start list scheduling: best of 32 perturbed-priority runs";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Single (s)"; "Multi-start (s)"; "Gain (s)";
          "Exact LB (s)" ]
  in
  Table.set_aligns table (Table.Left :: List.init 4 (fun _ -> Table.Right));
  List.iter
    (fun (inst : Suite.instance) ->
      let single =
        Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.Config.tc inst.graph
          inst.allocation
      in
      let multi =
        Mfb_schedule.Multi_start.schedule ~restarts:32 ~jobs
          ~rng:(Mfb_util.Rng.create 7) ~tc:config.tc inst.graph
          inst.allocation
      in
      let exact_column =
        if Mfb_bioassay.Seq_graph.n_ops inst.graph <= 8 then
          Printf.sprintf "%.1f"
            (Mfb_schedule.Exact.schedule ~tc:config.tc inst.graph
               inst.allocation)
              .schedule
              .makespan
        else "-"
      in
      Table.add_row table
        [
          Mfb_bioassay.Seq_graph.name inst.graph;
          Printf.sprintf "%.1f" single.makespan;
          Printf.sprintf "%.1f" multi.schedule.makespan;
          Printf.sprintf "%.1f" multi.improved_over_first;
          exact_column;
        ])
    (Suite.all ());
  Table.print table

(* ------------------------------------------------------------------ *)
(* Wash-flush planning (beyond the paper; after Hu et al.)            *)
(* ------------------------------------------------------------------ *)

let wash_planning config pairs =
  section "Wash-flush planning: buffer usage behind Fig. 9";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Flushes ours"; "Flushes BA"; "Buffer ours";
          "Buffer BA"; "Interf ours"; "Interf BA" ]
  in
  Table.set_aligns table (Table.Left :: List.init 6 (fun _ -> Table.Right));
  List.iter
    (fun ((ours : Result_.t), (ba : Result_.t)) ->
      let p = Mfb_route.Wash_plan.plan ~tc:config.Config.tc ours.routing in
      let pb = Mfb_route.Wash_plan.plan ~tc:config.tc ba.routing in
      Table.add_row table
        [
          ours.benchmark;
          string_of_int (List.length p.flushes);
          string_of_int (List.length pb.flushes);
          Printf.sprintf "%.0f" p.buffer_volume_cells;
          Printf.sprintf "%.0f" pb.buffer_volume_cells;
          string_of_int p.total_interferences;
          string_of_int pb.total_interferences;
        ])
    pairs;
  Table.print table;
  print_endline
    "(buffer = cells x seconds of wash flow; interf = flush cells occupied\n\
     by other fluids during the wash window)"

(* ------------------------------------------------------------------ *)
(* I/O dispensing study (beyond the paper)                            *)
(* ------------------------------------------------------------------ *)

let io_study config =
  section
    "I/O dispensing study: channel totals when inlet/waste runs are routed";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Chan ours"; "Chan ours+IO"; "Chan BA"; "Chan BA+IO";
          "IO conflicts ours/BA" ]
  in
  Table.set_aligns table (Table.Left :: List.init 5 (fun _ -> Table.Right));
  List.iter
    (fun (inst : Suite.instance) ->
      let ours = Flow.run ~config inst.graph inst.allocation in
      let ours_io =
        Flow.run ~config ~route_io:true inst.graph inst.allocation
      in
      let ba = Baseline.run ~config inst.graph inst.allocation in
      let ba_io =
        Baseline.run ~config ~route_io:true inst.graph inst.allocation
      in
      Table.add_row table
        [
          Mfb_bioassay.Seq_graph.name inst.graph;
          Printf.sprintf "%.0f" ours.channel_length_mm;
          Printf.sprintf "%.0f" ours_io.channel_length_mm;
          Printf.sprintf "%.0f" ba.channel_length_mm;
          Printf.sprintf "%.0f" ba_io.channel_length_mm;
          Printf.sprintf "%d/%d" ours_io.routing.unresolved
            ba_io.routing.unresolved;
        ])
    (Suite.all ());
  Table.print table;
  print_endline
    "(Table I above keeps the paper's scope — inter-component transports \
     only.)"

(* ------------------------------------------------------------------ *)
(* Architectural exploration (upstream of the paper; after ref [6])   *)
(* ------------------------------------------------------------------ *)

let allocation_exploration config =
  section
    "Architectural exploration: knee of the (components, time) frontier vs \
     Table-I allocations";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Table-I alloc"; "Exec (s)"; "Knee alloc";
          "Knee exec (s)"; "Components saved" ]
  in
  Table.set_aligns table (Table.Left :: List.init 5 (fun _ -> Table.Right));
  List.iter
    (fun (inst : Suite.instance) ->
      let table1_sched =
        Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.Config.tc inst.graph
          inst.allocation
      in
      let frontier = Mfb_core.Allocator.explore ~tc:config.tc inst.graph in
      match Mfb_core.Allocator.knee frontier with
      | None -> ()
      | Some knee ->
        Table.add_row table
          [
            Mfb_bioassay.Seq_graph.name inst.graph;
            Mfb_component.Allocation.to_string inst.allocation;
            Printf.sprintf "%.1f" table1_sched.makespan;
            Mfb_component.Allocation.to_string knee.allocation;
            Printf.sprintf "%.1f" knee.completion_time;
            string_of_int
              (Mfb_component.Allocation.total inst.allocation
              - knee.components);
          ])
    (Suite.all ());
  Table.print table

(* ------------------------------------------------------------------ *)
(* Physical validation: hydraulics of the tc abstraction + yield      *)
(* ------------------------------------------------------------------ *)

let physical_validation config pairs =
  section
    "Physical validation: how honest is constant t_c, and how fragile is \
     the layout?";
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Mean |err| (%)"; "Worst under (%)";
          "Pressure margin"; "Defect yield (%)" ]
  in
  Table.set_aligns table (Table.Left :: List.init 4 (fun _ -> Table.Right));
  List.iter
    (fun ((ours : Result_.t), _) ->
      let hydro =
        Mfb_route.Hydraulics.analyse ~tc:config.Config.tc ours.routing
      in
      let y =
        Mfb_route.Repair.single_defect_yield ~we:config.we ~tc:config.tc
          ours.chip ours.schedule ours.routing
      in
      Table.add_row table
        [
          ours.benchmark;
          Printf.sprintf "%.0f" (100. *. hydro.mean_absolute_error);
          Printf.sprintf "%.0f" (100. *. hydro.worst_underestimate);
          Printf.sprintf "%.2fx" hydro.pressure_margin;
          Printf.sprintf "%.0f" (100. *. y.yield);
        ])
    pairs;
  Table.print table;
  print_endline
    "(err: Hagen-Poiseuille transport time vs the scheduler's t_c; yield: \
     fraction of single channel-cell defects survivable by re-routing)"

(* ------------------------------------------------------------------ *)
(* Hot paths: incremental SA energy and reusable A* heuristic fields  *)
(* ------------------------------------------------------------------ *)

(* Counter evidence from the optimized inner loops, against the per-move
   cost of the dense evaluation they replace: a from-scratch objective
   visits every net plus every component pair, twice per proposal
   (moved and reverted placements), where the incremental path touches
   only terms incident to the moved components.  The periodic re-syncs
   are charged to the incremental side so the reduction factor covers
   everything the annealer evaluates.  Emits BENCH_hotpath.json. *)

type hotpath_row = {
  hp_name : string;
  hp_ops : int;
  hp_dense : int;          (* dense terms per proposal *)
  hp_inc : float;          (* measured incremental terms per proposal *)
  hp_reduction : float;
  hp_searches : int;
  hp_builds : int;
  hp_wall : float;
}

let hotpath_out = "BENCH_hotpath.json"

let hotpath_section config =
  section
    "Hot paths: evaluated terms per SA move and A* heuristic-field reuse";
  let measure (inst : Suite.instance) =
    let sink = Mfb_util.Telemetry.make_sink () in
    Mfb_util.Telemetry.install sink;
    let w0 = Unix.gettimeofday () in
    let result = Flow.run ~config inst.graph inst.allocation in
    let wall = Unix.gettimeofday () -. w0 in
    (match trace_sink with
     | Some s -> Mfb_util.Telemetry.install s
     | None -> Mfb_util.Telemetry.uninstall ());
    let c cat name = Mfb_util.Telemetry.counter_total sink ~cat name in
    let n = Array.length result.Result_.schedule.components in
    let n_nets =
      List.length (Mfb_place.Net.of_schedule result.Result_.schedule)
    in
    let pairs = n * (n - 1) / 2 in
    let dense = 2 * (n_nets + pairs) in
    let attempted = max 1 (c "place" "sa.attempted") in
    let inc_terms =
      c "place" "delta_evals" + (c "place" "resyncs" * (n_nets + pairs))
    in
    let hp_inc = float_of_int inc_terms /. float_of_int attempted in
    {
      hp_name = Mfb_bioassay.Seq_graph.name inst.graph;
      hp_ops = Mfb_bioassay.Seq_graph.n_ops inst.graph;
      hp_dense = dense;
      hp_inc;
      hp_reduction = float_of_int dense /. Float.max hp_inc 1e-9;
      hp_searches = c "route" "astar.searches";
      hp_builds = c "route" "heuristic_field_builds";
      hp_wall = wall;
    }
  in
  let rows = List.map measure (Suite.all ()) in
  let table =
    Table.create
      ~headers:
        [ "Benchmark"; "Ops"; "Dense terms/move"; "Incr terms/move";
          "Reduction"; "A* searches"; "Field builds"; "Wall (s)" ]
  in
  Table.set_aligns table (Table.Left :: List.init 7 (fun _ -> Table.Right));
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.hp_name;
          string_of_int r.hp_ops;
          string_of_int r.hp_dense;
          Printf.sprintf "%.1f" r.hp_inc;
          Printf.sprintf "%.1fx" r.hp_reduction;
          string_of_int r.hp_searches;
          string_of_int r.hp_builds;
          Printf.sprintf "%.3f" r.hp_wall;
        ])
    rows;
  Table.print table;
  let largest =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some best when best.hp_ops >= r.hp_ops -> acc
        | _ -> Some r)
      None rows
  in
  (match largest with
   | Some r ->
     Printf.printf
       "largest assay %s: %.1fx fewer evaluated terms per SA move \
        (target >= 3x: %s); heuristic fields built %d for %d searches\n"
       r.hp_name r.hp_reduction
       (if r.hp_reduction >= 3. then "met" else "MISSED")
       r.hp_builds r.hp_searches
   | None -> ());
  let row_json r =
    Mfb_util.Json.Obj
      [
        ("name", Mfb_util.Json.String r.hp_name);
        ("ops", Mfb_util.Json.Int r.hp_ops);
        ("dense_terms_per_move", Mfb_util.Json.Int r.hp_dense);
        ("incremental_terms_per_move", Mfb_util.Json.Float r.hp_inc);
        ("term_reduction", Mfb_util.Json.Float r.hp_reduction);
        ("astar_searches", Mfb_util.Json.Int r.hp_searches);
        ("heuristic_field_builds", Mfb_util.Json.Int r.hp_builds);
        ( "field_reuse",
          Mfb_util.Json.Float
            (float_of_int r.hp_searches
            /. float_of_int (max 1 r.hp_builds)) );
        ("wall_s", Mfb_util.Json.Float r.hp_wall);
      ]
  in
  let doc =
    Mfb_util.Json.Obj
      ([ ("benchmarks", Mfb_util.Json.List (List.map row_json rows)) ]
      @
      match largest with
      | None -> []
      | Some r ->
        [
          ( "largest_assay",
            Mfb_util.Json.Obj
              [
                ("name", Mfb_util.Json.String r.hp_name);
                ("term_reduction", Mfb_util.Json.Float r.hp_reduction);
                ("target", Mfb_util.Json.Float 3.0);
                ("met", Mfb_util.Json.Bool (r.hp_reduction >= 3.0));
              ] );
        ])
  in
  Out_channel.with_open_text hotpath_out (fun oc ->
      Mfb_util.Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" hotpath_out;
  match largest with Some r -> r.hp_reduction >= 3.0 | None -> false

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let bechamel_tests config pairs =
  let open Bechamel in
  let flow_test (inst : Suite.instance) =
    Test.make
      ~name:
        (Printf.sprintf "tableI/%s" (Mfb_bioassay.Seq_graph.name inst.graph))
      (Staged.stage (fun () -> Flow.run ~config inst.graph inst.allocation))
  in
  let cpa = Suite.cpa () in
  let sched =
    Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.Config.tc cpa.graph
      cpa.allocation
  in
  let nets =
    Mfb_place.Energy.weigh ~beta:config.beta ~gamma:config.gamma
      (Mfb_place.Net.of_schedule sched)
  in
  let placed =
    Mfb_place.Annealer.place ~params:config.sa
      ~rng:(Mfb_util.Rng.create config.seed) ~nets sched.components
  in
  let stage_tests =
    [
      Test.make ~name:"stage/schedule-cpa"
        (Staged.stage (fun () ->
             Mfb_schedule.Dcsa_scheduler.schedule ~tc:config.tc cpa.graph
               cpa.allocation));
      Test.make ~name:"stage/place-cpa"
        (Staged.stage (fun () ->
             Mfb_place.Annealer.place
               ~params:{ config.sa with t0 = 100.; i_max = 40 }
               ~rng:(Mfb_util.Rng.create config.seed) ~nets sched.components));
      Test.make ~name:"stage/route-cpa"
        (Staged.stage (fun () ->
             Mfb_route.Router.route ~we:config.we ~tc:config.tc placed.chip
               sched));
      Test.make ~name:"fig8/cache-metric"
        (Staged.stage (fun () ->
             List.map
               (fun ((ours : Result_.t), _) ->
                 Mfb_schedule.Metrics.total_channel_cache_time ours.schedule)
               pairs));
      Test.make ~name:"fig9/wash-metric"
        (Staged.stage (fun () ->
             List.map
               (fun ((ours : Result_.t), _) -> ours.Result_.channel_wash_time)
               pairs));
    ]
  in
  Test.make_grouped ~name:"dcsa"
    (List.map flow_test (Suite.all ()) @ stage_tests)

let run_bechamel config pairs =
  let open Bechamel in
  section "Bechamel micro-benchmarks (monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg_bench =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg_bench [ instance ] (bechamel_tests config pairs) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> x
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let table = Table.create ~headers:[ "benchmark"; "time per run" ] in
  Table.set_aligns table [ Table.Left; Table.Right ];
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter (fun (name, ns) -> Table.add_row table [ name; pretty ns ]) rows;
  Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let config = Config.default in
  Printf.printf
    "DCSA physical synthesis benchmark harness\n\
     parameters: alpha=%.1f beta=%.1f gamma=%.1f T0=%.0f Imax=%d Tmin=%.1f \
     tc=%.1f we=%.0f jobs=%d\n"
    config.sa.alpha config.beta config.gamma config.sa.t0 config.sa.i_max
    config.sa.t_min config.tc config.we jobs;
  (* --hotpath-only: run just the hot-path counter section (CI smoke);
     the exit status reports the >= 3x term-reduction target. *)
  if Array.mem "--hotpath-only" Sys.argv then begin
    let met = hotpath_section config in
    write_trace ();
    exit (if met then 0 else 1)
  end;
  (* --exact-only: run just the heuristic-vs-exact oracle section (CI
     exact-oracle job); the exit status reports the never-worse and
     gap-populated targets. *)
  if Array.mem "--exact-only" Sys.argv then begin
    let met = exact_comparison config in
    write_trace ();
    exit (if met then 0 else 1)
  end;
  let pairs = run_suite config in
  table1 pairs;
  stage_timing pairs;
  parallel_scaling config;
  figures pairs;
  ignore (hotpath_section config : bool);
  ablations config;
  tc_sensitivity config;
  beta_gamma_study config;
  dedicated_comparison config;
  control_layer pairs;
  multistart_study config;
  wash_planning config pairs;
  ignore (exact_comparison config : bool);
  allocation_exploration config;
  io_study config;
  physical_validation config pairs;
  if not (Array.mem "--no-bechamel" Sys.argv) then run_bechamel config pairs;
  write_trace ()
