(* Repair benchmark generator.

   For each benchmark, synthesises once, then sweeps seeded defect
   models over the chip and repairs each defect set incrementally
   (warm-start from the finished result), timing every repair against
   the cold alternative — re-running the full synthesis flow, which is
   what a defect-unaware system would have to do.  Reports:

   - warm-vs-cold median latency and the speedup (the SLO gate:
     warm-start repair must beat cold full resynthesis on median
     latency for single-cell defects, by --slo-x, default 1.0);
   - yield curves: survival fraction and escalation-rung histogram per
     defect model, and survival per virtual tick under the progressive
     model (a chip degrading in the field);
   - a legality gate: every surviving repair is audited with
     Plan.verify; any violation exits 1.

   Defect plans are pure functions of (--seed, chip), so CI replays the
   identical sweep from the seed alone.

   Run from the repo root with:
     dune exec bench/repair_gen.exe -- [--benchmarks PCR,IVD]
       [--defects N] [--seed S] [--slo-x F] [--out FILE]

   Writes the machine-readable summary to BENCH_repair.json (or --out). *)

module Json = Mfb_util.Json
module Defect = Mfb_repair.Defect
module Plan = Mfb_repair.Plan

let arg_value name default parse =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with Some v -> v | None -> default
    else scan (i + 1)
  in
  scan 0

let benchmarks =
  arg_value "--benchmarks" [ "PCR"; "IVD" ] (fun s ->
      Some (String.split_on_char ',' s))

let defects = arg_value "--defects" 10 int_of_string_opt
let seed = arg_value "--seed" 7 int_of_string_opt
let slo_x = arg_value "--slo-x" 1.0 float_of_string_opt
let out_file = arg_value "--out" "BENCH_repair.json" (fun s -> Some s)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let config = Mfb_core.Config.default

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1e3)

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then 0.0
  else if n mod 2 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

(* One repair, audited.  Exits on a legality violation — the gate. *)
let repair_checked ~bench (r : Mfb_core.Result.t) targets =
  let o = Plan.repair ~config r ~defects:targets in
  if o.report.survived then begin
    match Plan.verify ~config ~defects:targets o with
    | [] -> o
    | errs ->
      fail "%s: legality violation repairing [%s]:\n  %s" bench
        (String.concat " " (List.map Defect.target_to_string targets))
        (String.concat "\n  " errs)
  end
  else o

let rung_key (report : Plan.report) =
  match report.rung with None -> "none" | Some r -> Plan.rung_name r

(* Sweep one defect model: repair each seeded plan whole, count
   survivals and the rung histogram, collect warm latencies. *)
let sweep ~bench (r : Mfb_core.Result.t) ~plans =
  let rungs = Hashtbl.create 8 in
  let survived = ref 0 in
  let total = ref 0 in
  let latencies = ref [] in
  List.iter
    (fun plan ->
      match Defect.targets plan with
      | [] -> ()
      | targets ->
        incr total;
        let o, ms = time (fun () -> repair_checked ~bench r targets) in
        latencies := ms :: !latencies;
        if o.report.survived then incr survived;
        let k = rung_key o.report in
        Hashtbl.replace rungs k
          (1 + Option.value ~default:0 (Hashtbl.find_opt rungs k)))
    plans;
  let rung_json =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) rungs []
    |> List.sort compare
  in
  let json =
    Json.Obj
      [
        ("total", Json.Int !total);
        ("survived", Json.Int !survived);
        ( "yield",
          Json.Float
            (if !total = 0 then 1.0
             else float_of_int !survived /. float_of_int !total) );
        ("rungs", Json.Obj rung_json);
      ]
  in
  (json, Array.of_list (List.rev !latencies))

let bench_one name =
  let inst =
    match Mfb_core.Suite.find name with
    | Some i -> i
    | None -> fail "unknown benchmark %S" name
  in
  let synth () =
    Mfb_core.Flow.run ~config ~jobs:1 inst.graph inst.allocation
  in
  let r, first_cold_ms = time synth in
  (* Cold alternative: a defect-unaware system re-synthesises from
     scratch once per defect.  Time a sample of the same order as the
     warm sweep so the medians are comparable. *)
  let cold =
    Array.init (max 3 (min defects 8)) (fun i ->
        if i = 0 then first_cold_ms else snd (time synth))
  in
  let plans_of gen = List.init defects (fun i -> gen ~seed:(seed + i)) in
  let single_json, warm =
    sweep ~bench:name r ~plans:(plans_of (fun ~seed -> Defect.single_cell ~seed r.chip))
  in
  (* The single-cell model draws over the whole channel area, so many
     defects miss every route (rung "none").  The used sweep drives one
     defect through every cell the routing actually occupies — each
     repair does real rip-up work, making it the honest warm-latency
     population for the SLO gate. *)
  let used_json, warm_used =
    sweep ~bench:name r
      ~plans:
        (List.map
           (fun c -> [ { Defect.tick = 0; target = Defect.Cell c } ])
           (Mfb_route.Rgrid.used_cells r.routing.grid))
  in
  let warm = Array.append warm warm_used in
  let cluster_json, _ =
    sweep ~bench:name r
      ~plans:(plans_of (fun ~seed -> Defect.clustered ~seed ~radius:1 r.chip))
  in
  let component_json, _ =
    sweep ~bench:name r
      ~plans:(plans_of (fun ~seed -> Defect.component_fault ~seed r.chip))
  in
  (* Progressive degradation: one seeded plan, replayed tick by tick —
     the survival curve of a chip failing in the field. *)
  let prog = Defect.progressive ~seed ~count:(min defects 6) r.chip in
  let prog_curve =
    List.init (Defect.max_tick prog + 1) (fun tick ->
        match Defect.upto prog ~tick with
        | [] -> Json.Obj [ ("tick", Json.Int tick) ]
        | targets ->
          let o = repair_checked ~bench:name r targets in
          Json.Obj
            [
              ("tick", Json.Int tick);
              ("defects", Json.Int (List.length targets));
              ("survived", Json.Bool o.report.survived);
              ("rung", Json.String (rung_key o.report));
              ( "makespan_delta",
                Json.Float
                  (o.report.makespan_after -. o.report.makespan_before) );
            ])
  in
  let warm_med = median warm and cold_med = median cold in
  let speedup = if warm_med > 0.0 then cold_med /. warm_med else infinity in
  Printf.printf
    "%-11s cold median %8.2f ms   warm repair median %8.2f ms   speedup \
     %6.1fx\n"
    name cold_med warm_med speedup;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String name);
        ("cold_median_ms", Json.Float cold_med);
        ("warm_median_ms", Json.Float warm_med);
        ("speedup", Json.Float speedup);
        ("single", single_json);
        ("used", used_json);
        ("cluster", cluster_json);
        ("component", component_json);
        ("progressive", Json.List prog_curve);
      ]
  in
  (json, speedup)

let () =
  if defects < 1 then fail "--defects must be >= 1";
  Printf.printf
    "repair generator: %d seeded defects per model, benchmarks %s, seed=%d\n\n"
    defects
    (String.concat "," benchmarks)
    seed;
  let results = List.map bench_one benchmarks in
  let worst_speedup =
    List.fold_left (fun acc (_, s) -> Float.min acc s) infinity results
  in
  let slo_ok = worst_speedup >= slo_x in
  Printf.printf
    "\nSLO: warm-start repair vs cold resynthesis, worst speedup %.1fx \
     (required >= %.1fx): %s\n"
    worst_speedup slo_x
    (if slo_ok then "ok" else "BREACH");
  let doc =
    Json.Obj
      [
        ( "workload",
          Json.Obj
            [
              ( "benchmarks",
                Json.List (List.map (fun b -> Json.String b) benchmarks) );
              ("defects", Json.Int defects);
              ("seed", Json.Int seed);
            ] );
        ("benchmarks", Json.List (List.map fst results));
        ( "slo",
          Json.Obj
            [
              ("required_speedup", Json.Float slo_x);
              ("worst_speedup", Json.Float worst_speedup);
              ("ok", Json.Bool slo_ok);
            ] );
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      Json.to_channel ~indent:1 oc doc);
  Printf.eprintf "wrote %s\n" out_file;
  if not slo_ok then
    fail "SLO breach: warm repair speedup %.2fx < required %.2fx"
      worst_speedup slo_x
